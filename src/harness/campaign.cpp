#include "harness/campaign.h"

#include <chrono>
#include <ctime>
#include <sstream>

#include "attacks/primitive.h"
#include "attacks/support.h"
#include "common/rng.h"
#include "harness/fleet.h"
#include "kernel/protocol.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace ptstore::harness {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-thread CPU seconds. Boot and fork costs are measured on this clock,
/// not wall time: with more workers than cores a fork's wall time includes
/// preemption by sibling shards, which would make boot_amortization depend
/// on --jobs and the host's core count instead of on the work avoided.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Page window the proto generator maps/unmaps in: well above the victim's
/// fixed mapping so attack interleavings never collide with it.
constexpr VirtAddr kOpsVaBase = kUserSpaceBase + MiB(32);
constexpr u64 kOpsVaPages = 64;

/// The PTE value attack primitives try to plant: user-RWX mapping of the
/// kernel image base — the classic PT-Injection payload.
u64 injected_pte() {
  return ((kDramBase >> kPageShift) << pte::kPpnShift) | pte::kV | pte::kR |
         pte::kW | pte::kX | pte::kU;
}

}  // namespace

const char* to_string(CampaignKind k) {
  switch (k) {
    case CampaignKind::kProto: return "proto";
    case CampaignKind::kDiff: return "diff";
    case CampaignKind::kAttack: return "attack";
    case CampaignKind::kSmp: return "smp";
  }
  return "?";
}

std::optional<CampaignKind> campaign_kind_from(std::string_view name) {
  if (name == "proto") return CampaignKind::kProto;
  if (name == "diff") return CampaignKind::kDiff;
  if (name == "attack") return CampaignKind::kAttack;
  if (name == "smp") return CampaignKind::kSmp;
  return std::nullopt;
}

const char* to_string(CampaignOp::Kind k) {
  switch (k) {
    case CampaignOp::Kind::kCopyMm: return "copy_mm";
    case CampaignOp::Kind::kAllocPt: return "alloc_pt";
    case CampaignOp::Kind::kFreePt: return "free_pt";
    case CampaignOp::Kind::kSwitchMm: return "switch_mm";
    case CampaignOp::Kind::kExitMm: return "exit_mm";
    case CampaignOp::Kind::kGrow: return "grow";
    case CampaignOp::Kind::kRwWriteLeaf: return "rw_write_leaf";
    case CampaignOp::Kind::kRwWriteSecure: return "rw_write_secure";
    case CampaignOp::Kind::kPcbRewire: return "pcb_rewire";
    case CampaignOp::Kind::kRaceProbe: return "race_probe";
  }
  return "?";
}

OpResult exec_campaign_op(System& sys, const CampaignOp& op, CampaignKind kind) {
  ProtocolOps proto(sys.kernel());
  ProcessManager& pm = sys.kernel().processes();
  // SMP campaigns record the executing hart per op; replays re-dispatch to
  // the same hart, so reproducers stay interleave-deterministic.
  if (sys.nharts() > 1) {
    sys.kernel().set_active_hart(op.hart < sys.nharts() ? op.hart : 0);
  }
  try {
    switch (op.kind) {
      case CampaignOp::Kind::kCopyMm:
      case CampaignOp::Kind::kAllocPt:
      case CampaignOp::Kind::kFreePt:
      case CampaignOp::Kind::kSwitchMm:
      case CampaignOp::Kind::kExitMm:
      case CampaignOp::Kind::kGrow: {
        Process* proc = op.pid != 0 ? pm.find(op.pid) : nullptr;
        if (op.kind != CampaignOp::Kind::kGrow && proc == nullptr) {
          // A minimized replay dropped the op that created this pid.
          return {"no-proc", false};
        }
        ProtoResult r;
        switch (op.kind) {
          case CampaignOp::Kind::kCopyMm: r = proto.copy_mm(*proc); break;
          case CampaignOp::Kind::kAllocPt: r = proto.alloc_pt(*proc, op.arg); break;
          case CampaignOp::Kind::kFreePt: r = proto.free_pt(*proc, op.arg); break;
          case CampaignOp::Kind::kSwitchMm: r = proto.switch_mm(*proc); break;
          case CampaignOp::Kind::kExitMm: r = proto.exit_mm(*proc); break;
          default: r = proto.grow(static_cast<unsigned>(op.arg)); break;
        }
        // On a stock kernel (kProto) a firing defence IS the bug: nothing
        // attacked the machine, so zero-check/token/S-bit events mean the
        // protocol corrupted its own state. Under kAttack those same
        // statuses are the defences working as intended.
        const bool defence_fired = r.status == ProtoStatus::kZeroDetect ||
                                   is_credential_reject(r.status) ||
                                   r.status == ProtoStatus::kFault;
        const bool violation = (kind == CampaignKind::kProto ||
                                kind == CampaignKind::kSmp) &&
                               defence_fired;
        return {to_string(r.status), violation};
      }

      case CampaignOp::Kind::kRwWriteLeaf: {
        Process* proc = op.pid != 0 ? pm.find(op.pid) : nullptr;
        if (proc == nullptr) return {"no-proc", false};
        const u64 root = pm.pcb_pgd(*proc);
        const auto slot = attacks::find_leaf_slot(sys, root, attacks::kVictimVa);
        if (!slot) return {"no-slot", false};
        ArbitraryRw rw(sys.core());
        const KAccess w = rw.write(*slot, op.arg);
        // A regular store into a secure-region PT page must fault (S-bit).
        if (w.ok) return {"breach", true};
        return {"blocked", false};
      }

      case CampaignOp::Kind::kRwWriteSecure: {
        ArbitraryRw rw(sys.core());
        const KAccess w = rw.write(op.arg, 0xDEAD'BEEF'DEAD'BEEFULL);
        if (w.ok) return {"breach", true};
        return {"blocked", false};
      }

      case CampaignOp::Kind::kPcbRewire: {
        Process* proc = op.pid != 0 ? pm.find(op.pid) : nullptr;
        if (proc == nullptr) return {"no-proc", false};
        const u64 orig = pm.pcb_pgd(*proc);
        ArbitraryRw rw(sys.core());
        // The PCB lives in attackable normal memory: this store succeeds.
        if (!rw.write(proc->pcb_pgd_field(), op.arg).ok) return {"pcb-unreachable", false};
        const ProtoResult r = proto.switch_mm(*proc);
        // Undo so later ops run on an uncorrupted machine.
        (void)rw.write(proc->pcb_pgd_field(), orig);
        if (r.status == ProtoStatus::kOk) return {"breach", true};
        return {"blocked", false};
      }

      case CampaignOp::Kind::kRaceProbe: {
        // Cross-hart stale-TLB race probe, in three beats:
        //   1. hart 1 runs the subject and faults op.arg in writable — its
        //      TLB now caches a writable translation;
        //   2. hart 0 downgrades the page to read-only, which ends in a
        //      targeted cross-hart shootdown;
        //   3. hart 1 write-probes the page in U-mode. After the shootdown
        //      acked, the write MUST fault; a completed write means hart 1
        //      kept the stale writable entry — a shootdown-protocol breach.
        if (sys.nharts() < 2) return {"no-smp", false};
        Process* proc = op.pid != 0 ? pm.find(op.pid) : nullptr;
        if (proc == nullptr) return {"no-proc", false};
        Kernel& k = sys.kernel();
        const VirtAddr va = op.arg;
        k.set_active_hart(1);
        (void)proto.alloc_pt(*proc, va);  // Idempotent: may already be mapped.
        if (!proto.switch_mm(*proc).ok() || !k.user_access(*proc, va, true)) {
          k.set_active_hart(0);
          return {"no-map", false};
        }
        k.set_active_hart(0);
        if (!pm.protect_vma(*proc, va, kPageSize, pte::kR)) {
          return {"no-vma", false};
        }
        const MemAccessResult w = attacks::user_probe(sys.core(1), va, true);
        // Restore writability so later ops see a consistent machine.
        (void)pm.protect_vma(*proc, va, kPageSize, pte::kR | pte::kW);
        if (w.ok) return {"breach", true};
        return {"blocked", false};
      }
    }
  } catch (const KernelPanic& p) {
    return {std::string("panic:") + p.what(), true};
  }
  return {"?", false};
}

namespace {

/// Live pids in ascending order (std::map iteration), init included.
std::vector<u64> live_pids(System& sys) {
  std::vector<u64> pids;
  for (const auto& [pid, proc] : sys.kernel().processes().all()) pids.push_back(pid);
  return pids;
}

/// Generate + execute one proto/attack op stream, recording resolved ops.
/// Stops at the first violation; the recorded trace ends with the violating
/// op so it replays as-is.
void run_op_shard(System& sys, CampaignKind kind, Rng& rng, u64 op_count,
                  ShardOutcome* out) {
  const SecureRegion sr = sys.sbi().sr_get();
  const u64 victim_pid =
      kind == CampaignKind::kAttack && sys.kernel().processes().current() != nullptr
          ? sys.kernel().processes().current()->pid
          : 0;

  for (u64 i = 0; i < op_count; ++i) {
    const std::vector<u64> pids = live_pids(sys);
    const u64 init_pid = sys.init().pid;
    const u64 some_pid = pids[rng.next_below(pids.size())];
    const VirtAddr some_va = kOpsVaBase + rng.next_below(kOpsVaPages) * kPageSize;

    CampaignOp op;
    const u64 roll = rng.next_below(100);
    if (kind == CampaignKind::kSmp && roll < 12) {
      // Race-probe slice: the composite op drives both harts itself.
      op = {CampaignOp::Kind::kRaceProbe, some_pid, some_va};
    } else if (kind == CampaignKind::kAttack && roll < 25) {
      // Attacker-primitive slice of the interleaving.
      switch (roll % 3) {
        case 0:
          op = {CampaignOp::Kind::kRwWriteLeaf, victim_pid, injected_pte()};
          break;
        case 1: {
          if (sr.size() == 0) {  // Stock kernel: no secure region to probe.
            op = {CampaignOp::Kind::kRwWriteLeaf, victim_pid, injected_pte()};
            break;
          }
          const u64 off = rng.next_below(sr.size() / 8) * 8;
          op = {CampaignOp::Kind::kRwWriteSecure, 0, sr.base + off};
          break;
        }
        default:
          op = {CampaignOp::Kind::kPcbRewire, some_pid,
                (kDramBase + MiB(2)) & ~u64{kPageMask}};
          break;
      }
    } else if (roll < 40) {
      op = {CampaignOp::Kind::kCopyMm, some_pid, 0};
    } else if (roll < 58) {
      op = {CampaignOp::Kind::kAllocPt, some_pid, some_va};
    } else if (roll < 70) {
      op = {CampaignOp::Kind::kFreePt, some_pid, some_va};
    } else if (roll < 86) {
      op = {CampaignOp::Kind::kSwitchMm, some_pid, 0};
    } else if (roll < 96) {
      // Never exit init (or the attack victim: its mapping anchors the
      // rw_write_leaf primitive).
      const u64 pid = some_pid == init_pid || some_pid == victim_pid ? 0 : some_pid;
      if (pid == 0) {
        op = {CampaignOp::Kind::kSwitchMm, init_pid, 0};
      } else {
        op = {CampaignOp::Kind::kExitMm, pid, 0};
      }
    } else {
      op = {CampaignOp::Kind::kGrow, 0, rng.next_below(3)};
    }
    if (kind == CampaignKind::kSmp && op.kind != CampaignOp::Kind::kRaceProbe) {
      // Scatter protocol ops across the harts; the recorded hart makes the
      // interleaving part of the reproducer.
      op.hart = static_cast<u8>(rng.next_below(sys.nharts()));
    }

    out->repro.push_back(op);
    const OpResult r = exec_campaign_op(sys, op, kind);
    ++out->ops_executed;
    ++out->status_counts[std::string(to_string(op.kind)) + ":" + r.status];
    if (r.violation) {
      out->failed = true;
      std::ostringstream os;
      os << to_string(op.kind) << " -> " << r.status << " at op " << i;
      out->failure = os.str();
      return;
    }
  }
  // Healthy shard: the trace is not a reproducer, drop it.
  out->repro.clear();
}

}  // namespace

SystemCheckpoint campaign_checkpoint(const CampaignSpec& spec) {
  SystemConfig cfg =
      spec.ptstore ? SystemConfig::cfi_ptstore() : SystemConfig::cfi();
  apply_backend(cfg, spec.backend);
  cfg.dram_size = spec.dram_size;
  cfg.nharts = spec.nharts;
  cfg.kernel.skip_shootdown_ipi = spec.sabotage_skip_ipi;
  auto sys = System::create(cfg);
  if (!sys.ok()) {
    throw std::runtime_error("campaign master boot failed: " + sys.error());
  }
  System& s = *sys.value();
  // Deterministic master prep: pre-spawn a process population so every
  // shard starts with real copy/switch/exit targets instead of spending
  // its first ops building one. This is per-shard setup work the
  // checkpoint amortizes — without forking, each shard would boot AND
  // re-spawn this population itself.
  ProtocolOps proto(s.kernel());
  for (u64 i = 0; i < spec.prep_processes; ++i) {
    const ProtoResult r = proto.copy_mm(s.init());
    if (r.status != ProtoStatus::kOk) {
      throw std::runtime_error("campaign master prep copy_mm failed");
    }
  }
  return s.checkpoint();
}

bool replay_trace_fails(const SystemCheckpoint& ck, CampaignKind kind,
                        const std::vector<CampaignOp>& ops, std::string* why) {
  auto sys = System::create_from(ck);
  if (!sys.ok()) {
    if (why != nullptr) *why = "fork failed: " + sys.error();
    return false;
  }
  if (kind == CampaignKind::kAttack) {
    attacks::setup_victim(*sys.value());
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpResult r = exec_campaign_op(*sys.value(), ops[i], kind);
    if (r.violation) {
      if (why != nullptr) {
        std::ostringstream os;
        os << to_string(ops[i].kind) << " -> " << r.status << " at op " << i;
        *why = os.str();
      }
      return true;
    }
  }
  return false;
}

std::vector<CampaignOp> minimize_trace(const SystemCheckpoint& ck, CampaignKind kind,
                                       const std::vector<CampaignOp>& ops) {
  std::vector<CampaignOp> best = ops;
  // Greedy one-at-a-time removal, front to back. Ops whose removal breaks
  // later pid references degrade to no-ops during replay, so removals
  // compose without re-resolving arguments.
  size_t i = 0;
  while (i < best.size()) {
    std::vector<CampaignOp> candidate = best;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
    if (replay_trace_fails(ck, kind, candidate)) {
      best = std::move(candidate);
    } else {
      ++i;
    }
  }
  return best;
}

CampaignResult run_campaign(const CampaignSpec& spec) {
  CampaignResult result;
  result.spec = spec;
  result.shards.resize(spec.shards);
  result.timing.jobs_resolved = resolve_jobs(spec.jobs);
  const auto wall0 = Clock::now();

  SystemCheckpoint ck;
  if (spec.kind != CampaignKind::kDiff) {
    const double boot0 = thread_cpu_seconds();
    ck = campaign_checkpoint(spec);
    result.timing.boot_seconds = thread_cpu_seconds() - boot0;
  }

  std::vector<double> fork_secs(spec.shards, 0.0);
  run_fleet(spec.jobs, spec.shards, [&](u64 shard) {
    ShardOutcome& out = result.shards[shard];
    out.shard = shard;
    out.seed = shard_seed(spec.seed, shard);
    Rng rng(out.seed);

    if (spec.kind == CampaignKind::kDiff) {
      const DiffOutcome d = run_diff_stream(out.seed, spec.diff);
      out.ops_executed = spec.diff.op_count;
      out.failed = d.failed();
      if (out.failed) out.failure = d.describe();
      ++out.status_counts[out.failed ? "diff:diverged" : "diff:ok"];
      return;
    }

    // Warm this worker's heap once (untimed) before the first timed fork:
    // a fresh thread pays one-time allocator-arena and stack faults on its
    // first big allocation, costs the boot-per-shard alternative would pay
    // identically and which are not part of the fork work being measured.
    thread_local bool warmed = false;
    if (!warmed) {
      warmed = true;
      auto discard = System::create_from(ck);
      (void)discard;
    }

    const double fork0 = thread_cpu_seconds();
    auto sys = System::create_from(ck);
    fork_secs[shard] = thread_cpu_seconds() - fork0;
    if (!sys.ok()) {
      out.failed = true;
      out.failure = "fork failed: " + sys.error();
      return;
    }
    if (spec.kind == CampaignKind::kAttack) {
      attacks::setup_victim(*sys.value());
    }
    // Per-shard call-stack capture: the profiler is thread-local, so each
    // worker profiles its own shard; the session brackets exactly the op
    // stream (fork/minimize replays stay outside it).
    if (spec.profile) {
      System& m = *sys.value();
      telemetry::enable_profiling().session_begin(
          "shard", m.core().cycles(), static_cast<u8>(m.core().priv()));
    }
    run_op_shard(*sys.value(), spec.kind, rng, spec.ops_per_shard, &out);
    if (spec.profile) {
      telemetry::Profiler& pf = *telemetry::profiling();
      pf.session_end(sys.value()->core().cycles());
      out.profile = pf.snapshot();
      telemetry::disable_profiling();
    }
    if (out.failed && spec.minimize && !out.repro.empty()) {
      out.repro = minimize_trace(ck, spec.kind, out.repro);
    }
    out.stats = sys.value()->report();
  });

  for (const double s : fork_secs) result.timing.fork_seconds_total += s;
  for (const ShardOutcome& s : result.shards) {
    if (s.failed) ++result.failures;
  }
  result.aggregate = telemetry::merge_shard_stats([&] {
    std::vector<StatSet> per_shard;
    per_shard.reserve(result.shards.size());
    for (const ShardOutcome& s : result.shards) per_shard.push_back(s.stats);
    return per_shard;
  }());
  if (spec.profile) {
    for (const ShardOutcome& s : result.shards) {
      telemetry::merge_folded(result.profile, s.profile);
    }
  }
  result.timing.wall_seconds = seconds_since(wall0);
  return result;
}

void write_campaign_report(std::ostream& os, const CampaignResult& r,
                           bool include_timing) {
  telemetry::JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", kCampaignReportSchemaVersion);
  w.kv("campaign", to_string(r.spec.kind));
  w.kv("ptstore", r.spec.ptstore);
  // Only emitted for explicit backend selections: seed reports (kAuto)
  // predate this key and stay byte-identical.
  if (r.spec.backend != BackendKind::kAuto) {
    w.kv("backend", to_string(r.spec.backend));
  }
  // SMP campaigns only: single-hart reports predate these keys and stay
  // byte-identical.
  if (r.spec.nharts > 1) {
    w.kv("nharts", static_cast<u64>(r.spec.nharts));
    w.kv("sabotage_skip_ipi", r.spec.sabotage_skip_ipi);
  }
  w.kv("campaign_seed", r.spec.seed);
  w.kv("shard_count", r.spec.shards);
  w.kv("ops_per_shard",
       r.spec.kind == CampaignKind::kDiff ? r.spec.diff.op_count : r.spec.ops_per_shard);
  w.kv("failures", r.failures);

  w.key("shards").begin_array();
  for (const ShardOutcome& s : r.shards) {
    w.begin_object();
    w.kv("shard", s.shard);
    w.kv("seed", s.seed);
    w.kv("failed", s.failed);
    if (s.failed) w.kv("failure", s.failure);
    w.kv("ops_executed", s.ops_executed);
    w.key("status_counts").begin_object();
    for (const auto& [k, v] : s.status_counts) w.kv(k, v);
    w.end_object();
    if (!s.repro.empty()) {
      w.key("repro").begin_array();
      for (const CampaignOp& op : s.repro) {
        w.begin_object();
        w.kv("op", to_string(op.kind));
        w.kv("pid", op.pid);
        w.kv("arg", op.arg);
        // Hart 0 is implied (and the only hart in pre-SMP reports).
        if (op.hart != 0) w.kv("hart", static_cast<u64>(op.hart));
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();

  w.key("aggregate_counters").begin_object();
  for (const auto& [name, value] : r.aggregate.counters()) w.kv(name, value);
  w.end_object();

  // Conditional: absent unless the campaign profiled, so pre-profile seed
  // reports stay byte-identical.
  if (r.spec.profile) {
    w.key("profile").begin_object();
    w.kv("total_cycles", r.profile.total_cycles);
    w.kv("truncated_frames", r.profile.truncated_frames);
    w.key("stacks").begin_array();
    for (const auto& [key, entry] : r.profile.stacks) {
      w.begin_object();
      w.kv("stack", key);
      w.kv("cycles", entry.cycles);
      w.kv("count", entry.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (include_timing) {
    w.key("timing").begin_object();
    w.kv("jobs", static_cast<u64>(r.timing.jobs_resolved));
    w.kv("wall_seconds", r.timing.wall_seconds);
    w.kv("boot_seconds", r.timing.boot_seconds);
    w.kv("fork_seconds_total", r.timing.fork_seconds_total);
    w.kv("boot_amortization", r.timing.boot_amortization(r.spec.shards));
    w.end_object();
  }

  w.end_object();
  os << "\n";
}

std::string campaign_report_json(const CampaignResult& r, bool include_timing) {
  std::ostringstream os;
  write_campaign_report(os, r, include_timing);
  return os.str();
}

}  // namespace ptstore::harness
