// Instruction execution for the interpreter core.
#include "common/bits.h"
#include "cpu/core.h"
#include "telemetry/trace.h"

namespace ptstore {

using isa::Inst;
using isa::Op;
using isa::TrapCause;
namespace csr = isa::csr;

namespace {

u64 sext32(u64 v) { return static_cast<u64>(static_cast<i64>(static_cast<i32>(v))); }

u64 mulh_ss(u64 a, u64 b) {
  return static_cast<u64>((static_cast<__int128>(static_cast<i64>(a)) *
                           static_cast<__int128>(static_cast<i64>(b))) >> 64);
}
u64 mulh_su(u64 a, u64 b) {
  return static_cast<u64>((static_cast<__int128>(static_cast<i64>(a)) *
                           static_cast<unsigned __int128>(b)) >> 64);
}
u64 mulh_uu(u64 a, u64 b) {
  return static_cast<u64>((static_cast<unsigned __int128>(a) *
                           static_cast<unsigned __int128>(b)) >> 64);
}

i64 div_signed(i64 a, i64 b) {
  if (b == 0) return -1;
  if (a == INT64_MIN && b == -1) return INT64_MIN;
  return a / b;
}
i64 rem_signed(i64 a, i64 b) {
  if (b == 0) return a;
  if (a == INT64_MIN && b == -1) return 0;
  return a % b;
}

}  // namespace

StepResult Core::step() {
  if (maybe_take_interrupt()) {
    return {StopReason::kTrapped, TrapCause::kNone};
  }
  cycles_ += cfg_.timing.base_cpi;
  if (cfg_.decode_cache) return step_cached();
  return step_fetch_decode(nullptr);
}

StepResult Core::step_fetch_decode(const TranslateResult* pre) {
  // With the C extension IALIGN is 16: fetch the low parcel first, and the
  // high parcel only when the low one announces a 32-bit encoding.
  const MemAccessResult lo =
      access_with(pc_, 2, AccessType::kExecute, AccessKind::kRegular, priv_, 0, pre);
  cycles_ += lo.cycles;
  if (!lo.ok) return raise(lo.fault, pc_);
  u32 word = static_cast<u32>(lo.value);
  if ((word & 0b11) == 0b11) {
    const MemAccessResult hi =
        access(pc_ + 2, 2, AccessType::kExecute, AccessKind::kRegular);
    cycles_ += hi.cycles;
    if (!hi.ok) return raise(hi.fault, pc_ + 2);
    word |= static_cast<u32>(hi.value) << 16;
  }

  const Inst in = isa::decode_any(word);
  if (trace_hook_) trace_hook_(*this, pc_, in);
  if (in.op == Op::kIllegal) return raise(TrapCause::kIllegalInst, word);
  if (in.is_pt_access() && !cfg_.ptstore_enabled) {
    // Baseline core: the custom opcodes are not implemented.
    return raise(TrapCause::kIllegalInst, word);
  }

  const StepResult r = execute(in);
  if (r.stop != StopReason::kTrapped) ++instret_;
  return r;
}

StepResult Core::execute(const Inst& in) {
  if (in.is_load() || in.is_store()) return exec_mem(in);
  if (in.is_amo()) return exec_amo(in);
  switch (in.op) {
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
    case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
    case Op::kMret: case Op::kSret: case Op::kWfi:
    case Op::kSfenceVma: case Op::kFence: case Op::kFenceI:
      return exec_system(in);
    default:
      return exec_alu(in);
  }
}

StepResult Core::exec_alu(const Inst& in) {
  const u64 rs1 = reg(in.rs1);
  const u64 rs2 = reg(in.rs2);
  const u64 imm = static_cast<u64>(in.imm);
  u64 rd = 0;
  bool write_rd = true;
  u64 next_pc = pc_ + in.len;

  switch (in.op) {
    case Op::kLui: rd = imm; break;
    case Op::kAuipc: rd = pc_ + imm; break;
    case Op::kJal:
      rd = pc_ + in.len;
      next_pc = pc_ + imm;
      cycles_ += cfg_.bpred.enabled ? bpred_.resolve_jump(pc_, next_pc)
                                    : cfg_.timing.jump_penalty;
      // Shadow call stack: `jal ra/t0` is a call under the RISC-V link
      // register convention. Pure observation — no cycles charged.
      if (in.rd == 1 || in.rd == 5) {
        if (telemetry::Profiler* p = telemetry::profiling()) {
          p->on_call(next_pc, cycles_, static_cast<u8>(priv_));
        }
      }
      break;
    case Op::kJalr:
      rd = pc_ + in.len;
      next_pc = (rs1 + imm) & ~u64{1};
      cycles_ += cfg_.bpred.enabled ? bpred_.resolve_jump(pc_, next_pc)
                                    : cfg_.timing.jump_penalty;
      if (telemetry::Profiler* p = telemetry::profiling()) {
        if (in.rd == 1 || in.rd == 5) {
          p->on_call(next_pc, cycles_, static_cast<u8>(priv_));
        } else if (in.rd == 0 && (in.rs1 == 1 || in.rs1 == 5)) {
          p->on_ret(cycles_, static_cast<u8>(priv_));
        }
      }
      break;
    case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBge: case Op::kBltu: case Op::kBgeu: {
      bool taken = false;
      switch (in.op) {
        case Op::kBeq: taken = rs1 == rs2; break;
        case Op::kBne: taken = rs1 != rs2; break;
        case Op::kBlt: taken = static_cast<i64>(rs1) < static_cast<i64>(rs2); break;
        case Op::kBge: taken = static_cast<i64>(rs1) >= static_cast<i64>(rs2); break;
        case Op::kBltu: taken = rs1 < rs2; break;
        case Op::kBgeu: taken = rs1 >= rs2; break;
        default: break;
      }
      write_rd = false;
      if (taken) next_pc = pc_ + imm;
      if (cfg_.bpred.enabled) {
        cycles_ += bpred_.resolve_branch(pc_, taken);
      } else if (taken) {
        cycles_ += cfg_.timing.branch_taken_penalty;
      }
      break;
    }
    case Op::kAddi: rd = rs1 + imm; break;
    case Op::kSlti: rd = static_cast<i64>(rs1) < in.imm ? 1 : 0; break;
    case Op::kSltiu: rd = rs1 < imm ? 1 : 0; break;
    case Op::kXori: rd = rs1 ^ imm; break;
    case Op::kOri: rd = rs1 | imm; break;
    case Op::kAndi: rd = rs1 & imm; break;
    case Op::kSlli: rd = rs1 << (imm & 63); break;
    case Op::kSrli: rd = rs1 >> (imm & 63); break;
    case Op::kSrai: rd = static_cast<u64>(static_cast<i64>(rs1) >> (imm & 63)); break;
    case Op::kAdd: rd = rs1 + rs2; break;
    case Op::kSub: rd = rs1 - rs2; break;
    case Op::kSll: rd = rs1 << (rs2 & 63); break;
    case Op::kSlt: rd = static_cast<i64>(rs1) < static_cast<i64>(rs2) ? 1 : 0; break;
    case Op::kSltu: rd = rs1 < rs2 ? 1 : 0; break;
    case Op::kXor: rd = rs1 ^ rs2; break;
    case Op::kSrl: rd = rs1 >> (rs2 & 63); break;
    case Op::kSra: rd = static_cast<u64>(static_cast<i64>(rs1) >> (rs2 & 63)); break;
    case Op::kOr: rd = rs1 | rs2; break;
    case Op::kAnd: rd = rs1 & rs2; break;
    case Op::kAddiw: rd = sext32(rs1 + imm); break;
    case Op::kSlliw: rd = sext32(rs1 << (imm & 31)); break;
    case Op::kSrliw: rd = sext32(static_cast<u32>(rs1) >> (imm & 31)); break;
    case Op::kSraiw:
      rd = static_cast<u64>(static_cast<i64>(static_cast<i32>(rs1) >> (imm & 31)));
      break;
    case Op::kAddw: rd = sext32(rs1 + rs2); break;
    case Op::kSubw: rd = sext32(rs1 - rs2); break;
    case Op::kSllw: rd = sext32(rs1 << (rs2 & 31)); break;
    case Op::kSrlw: rd = sext32(static_cast<u32>(rs1) >> (rs2 & 31)); break;
    case Op::kSraw:
      rd = static_cast<u64>(static_cast<i64>(static_cast<i32>(rs1) >> (rs2 & 31)));
      break;
    case Op::kMul: rd = rs1 * rs2; cycles_ += cfg_.timing.mul_extra; break;
    case Op::kMulh: rd = mulh_ss(rs1, rs2); cycles_ += cfg_.timing.mul_extra; break;
    case Op::kMulhsu: rd = mulh_su(rs1, rs2); cycles_ += cfg_.timing.mul_extra; break;
    case Op::kMulhu: rd = mulh_uu(rs1, rs2); cycles_ += cfg_.timing.mul_extra; break;
    case Op::kDiv:
      rd = static_cast<u64>(div_signed(static_cast<i64>(rs1), static_cast<i64>(rs2)));
      cycles_ += cfg_.timing.div_extra;
      break;
    case Op::kDivu:
      rd = rs2 == 0 ? ~u64{0} : rs1 / rs2;
      cycles_ += cfg_.timing.div_extra;
      break;
    case Op::kRem:
      rd = static_cast<u64>(rem_signed(static_cast<i64>(rs1), static_cast<i64>(rs2)));
      cycles_ += cfg_.timing.div_extra;
      break;
    case Op::kRemu:
      rd = rs2 == 0 ? rs1 : rs1 % rs2;
      cycles_ += cfg_.timing.div_extra;
      break;
    case Op::kMulw: rd = sext32(rs1 * rs2); cycles_ += cfg_.timing.mul_extra; break;
    case Op::kDivw:
      rd = static_cast<u64>(static_cast<i64>(static_cast<i32>(
          div_signed(static_cast<i32>(rs1), static_cast<i32>(rs2)))));
      cycles_ += cfg_.timing.div_extra;
      break;
    case Op::kDivuw: {
      const u32 a = static_cast<u32>(rs1);
      const u32 b = static_cast<u32>(rs2);
      rd = sext32(b == 0 ? ~u32{0} : a / b);
      cycles_ += cfg_.timing.div_extra;
      break;
    }
    case Op::kRemw:
      rd = static_cast<u64>(static_cast<i64>(static_cast<i32>(
          rem_signed(static_cast<i32>(rs1), static_cast<i32>(rs2)))));
      cycles_ += cfg_.timing.div_extra;
      break;
    case Op::kRemuw: {
      const u32 a = static_cast<u32>(rs1);
      const u32 b = static_cast<u32>(rs2);
      rd = sext32(b == 0 ? a : a % b);
      cycles_ += cfg_.timing.div_extra;
      break;
    }
    default:
      return raise(TrapCause::kIllegalInst, in.raw);
  }

  if (write_rd) set_reg(in.rd, rd);
  pc_ = next_pc;
  return {};
}

StepResult Core::exec_mem(const Inst& in) {
  const VirtAddr va = reg(in.rs1) + static_cast<u64>(in.imm);
  unsigned size = 8;
  bool sign = false;
  switch (in.op) {
    case Op::kLb: case Op::kSb: size = 1; sign = true; break;
    case Op::kLh: case Op::kSh: size = 2; sign = true; break;
    case Op::kLw: case Op::kSw: size = 4; sign = true; break;
    case Op::kLbu: size = 1; break;
    case Op::kLhu: size = 2; break;
    case Op::kLwu: size = 4; break;
    default: break;  // ld/sd/ld.pt/sd.pt are 8 bytes.
  }

  const AccessKind kind = in.is_pt_access() ? AccessKind::kPtInsn : AccessKind::kRegular;
  if (in.is_pt_access() && priv_ == Privilege::kUser) {
    // The secure-region instructions are kernel tools; executing them in
    // U-mode is an illegal instruction (design choice, DESIGN.md §5).
    return raise(TrapCause::kIllegalInst, in.raw);
  }

  if (in.is_store()) {
    const MemAccessResult r = access(va, size, AccessType::kWrite, kind, reg(in.rs2));
    cycles_ += r.cycles;
    if (!r.ok) return raise(r.fault, va);
    if (kind == AccessKind::kPtInsn) {
      sd_pt_.add();
      if (telemetry::EventRing* tr = telemetry::tracing()) {
        tr->instant(telemetry::Subsystem::kPtInsn, "sd.pt", cycles_, instret_,
                    static_cast<u8>(priv_), va);
      }
    }
  } else {
    const MemAccessResult r = access(va, size, AccessType::kRead, kind);
    cycles_ += r.cycles;
    if (!r.ok) return raise(r.fault, va);
    u64 v = r.value;
    if (sign) v = static_cast<u64>(sign_extend(v, 8 * size));
    set_reg(in.rd, v);
    if (kind == AccessKind::kPtInsn) {
      ld_pt_.add();
      if (telemetry::EventRing* tr = telemetry::tracing()) {
        tr->instant(telemetry::Subsystem::kPtInsn, "ld.pt", cycles_, instret_,
                    static_cast<u8>(priv_), va);
      }
    }
  }
  pc_ += in.len;
  return {};
}

StepResult Core::exec_amo(const Inst& in) {
  const VirtAddr va = reg(in.rs1);
  const bool word = (in.op == Op::kLrW || in.op == Op::kScW || in.op == Op::kAmoSwapW ||
                     in.op == Op::kAmoAddW || in.op == Op::kAmoXorW ||
                     in.op == Op::kAmoAndW || in.op == Op::kAmoOrW);
  const unsigned size = word ? 4 : 8;
  cycles_ += cfg_.timing.amo_extra;

  if (in.op == Op::kLrW || in.op == Op::kLrD) {
    const MemAccessResult r = access(va, size, AccessType::kRead, AccessKind::kRegular);
    cycles_ += r.cycles;
    if (!r.ok) return raise(r.fault, va);
    set_reg(in.rd, word ? sext32(r.value) : r.value);
    reservation_ = r.pa;
    pc_ += 4;
    return {};
  }
  if (in.op == Op::kScW || in.op == Op::kScD) {
    // Translate first so SC faults behave like stores.
    const MemAccessResult probe = access(va, size, AccessType::kRead, AccessKind::kRegular);
    cycles_ += probe.cycles;
    if (!probe.ok) return raise(isa::TrapCause::kStoreAccessFault, va);
    const bool match = reservation_ && align_down(*reservation_, 8) == align_down(probe.pa, 8);
    reservation_.reset();
    if (match) {
      const MemAccessResult w =
          access(va, size, AccessType::kWrite, AccessKind::kRegular, reg(in.rs2));
      cycles_ += w.cycles;
      if (!w.ok) return raise(w.fault, va);
      set_reg(in.rd, 0);
    } else {
      set_reg(in.rd, 1);
    }
    pc_ += 4;
    return {};
  }

  // Read-modify-write AMOs.
  const MemAccessResult r = access(va, size, AccessType::kRead, AccessKind::kRegular);
  cycles_ += r.cycles;
  if (!r.ok) return raise(r.fault == TrapCause::kLoadAccessFault
                              ? TrapCause::kStoreAccessFault
                              : r.fault,
                          va);
  const u64 old = word ? sext32(r.value) : r.value;
  const u64 rhs = reg(in.rs2);
  u64 result = 0;
  switch (in.op) {
    case Op::kAmoSwapW: case Op::kAmoSwapD: result = rhs; break;
    case Op::kAmoAddW: case Op::kAmoAddD: result = old + rhs; break;
    case Op::kAmoXorW: case Op::kAmoXorD: result = old ^ rhs; break;
    case Op::kAmoAndW: case Op::kAmoAndD: result = old & rhs; break;
    case Op::kAmoOrW: case Op::kAmoOrD: result = old | rhs; break;
    default: return raise(TrapCause::kIllegalInst, in.raw);
  }
  const MemAccessResult w = access(va, size, AccessType::kWrite, AccessKind::kRegular, result);
  cycles_ += w.cycles;
  if (!w.ok) return raise(w.fault, va);
  set_reg(in.rd, old);
  pc_ += in.len;
  return {};
}

StepResult Core::exec_system(const Inst& in) {
  switch (in.op) {
    case Op::kEcall:
      switch (priv_) {
        case Privilege::kUser: return raise(TrapCause::kEcallFromU, 0);
        case Privilege::kSupervisor: return raise(TrapCause::kEcallFromS, 0);
        case Privilege::kMachine: return raise(TrapCause::kEcallFromM, 0);
      }
      return raise(TrapCause::kIllegalInst, in.raw);
    case Op::kEbreak: {
      // With no M-mode handler installed, ebreak halts — the convention test
      // programs use to stop cleanly.
      const bool delegated = (medeleg_ >> static_cast<u64>(TrapCause::kBreakpoint)) & 1;
      if (mtvec_ == 0 && !(delegated && priv_ != Privilege::kMachine)) {
        return {StopReason::kEbreakHalt, TrapCause::kNone};
      }
      return raise(TrapCause::kBreakpoint, pc_);
    }
    case Op::kWfi:
      if (priv_ == Privilege::kUser) return raise(TrapCause::kIllegalInst, in.raw);
      update_timer_pending();
      if (interrupt_pending()) {
        // An interrupt is pending: wfi completes immediately.
        pc_ += in.len;
        return {};
      }
      return {StopReason::kWfi, TrapCause::kNone};
    case Op::kMret:
      if (priv_ != Privilege::kMachine) return raise(TrapCause::kIllegalInst, in.raw);
      do_mret();
      return {};
    case Op::kSret:
      if (priv_ == Privilege::kUser) return raise(TrapCause::kIllegalInst, in.raw);
      do_sret();
      return {};
    case Op::kSfenceVma: {
      if (priv_ == Privilege::kUser) return raise(TrapCause::kIllegalInst, in.raw);
      std::optional<VirtAddr> va;
      std::optional<u16> asid;
      if (in.rs1 != 0) va = reg(in.rs1);
      if (in.rs2 != 0) asid = static_cast<u16>(reg(in.rs2));
      mmu_.sfence(va, asid);
      cycles_ += cfg_.timing.sfence_extra;
      pc_ += in.len;
      return {};
    }
    case Op::kFence:
      pc_ += in.len;
      return {};
    case Op::kFenceI:
      cycles_ += cfg_.timing.fence_extra;
      // Deferred so a block currently dispatching stays alive; applied at
      // the top of the next cached step.
      bb_flush_pending_ = true;
      pc_ += in.len;
      return {};
    case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
    case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci: {
      const u32 num = static_cast<u32>(in.imm);
      const bool is_imm = (in.op == Op::kCsrrwi || in.op == Op::kCsrrsi ||
                           in.op == Op::kCsrrci);
      const u64 operand = is_imm ? in.rs1 : reg(in.rs1);
      const std::optional<u64> old = read_csr(num, priv_);
      if (!old) return raise(TrapCause::kIllegalInst, in.raw);
      cycles_ += cfg_.timing.csr_extra;

      u64 next = *old;
      bool do_write = true;
      switch (in.op) {
        case Op::kCsrrw: case Op::kCsrrwi:
          next = operand;
          break;
        case Op::kCsrrs: case Op::kCsrrsi:
          next = *old | operand;
          do_write = operand != 0 || in.rs1 != 0;
          if (is_imm) do_write = operand != 0;
          else do_write = in.rs1 != 0;
          break;
        case Op::kCsrrc: case Op::kCsrrci:
          next = *old & ~operand;
          if (is_imm) do_write = operand != 0;
          else do_write = in.rs1 != 0;
          break;
        default: break;
      }
      if (do_write && !write_csr(num, next, priv_)) {
        return raise(TrapCause::kIllegalInst, in.raw);
      }
      set_reg(in.rd, *old);
      pc_ += in.len;
      return {};
    }
    default:
      return raise(TrapCause::kIllegalInst, in.raw);
  }
}

}  // namespace ptstore
