// Decoded basic-block cache for the interpreter core.
//
// Blocks are straight-line runs of pre-decoded instructions keyed by the
// *physical* address of their first parcel (plus the fetch privilege, since
// the cached PMP fetch decision depends on it). Dispatch is per step: every
// step still performs the real MMU translation of the fetch PC — so TLB,
// page-table-walker, and I-cache counters stay bit-identical to the
// fetch/decode path — and only the PMP scan, the physical parcel reads, and
// decode_any() are skipped, guarded by generation counters:
//
//   * PmpUnit::write_gen()       — any pmpcfg/pmpaddr write drops the block.
//   * PhysMem frame write gens   — any store into the block's page drops it
//                                  (self-modifying code, aliased mappings).
//   * PhysMem::frame_table_gen() — checkpoint restore drops everything.
//
// satp writes, sfence.vma, and privilege changes need no hooks: the per-step
// translation re-derives the physical PC, so a remap simply stops matching
// the cached block. fence.i conservatively flushes the whole cache (it is
// the architectural "I just wrote code" signal), although the frame
// generations already make that a no-op for correctness.
//
// The cache is a pure host-speed structure: simulated cycles and every
// StatSet counter are unchanged whether it is on or off.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/inst.h"

namespace ptstore {

/// One pre-decoded instruction within a block.
struct BBEntry {
  isa::Inst inst;
  u16 page_off = 0;  ///< Offset of the first parcel within the 4 KiB page.
};

/// A decoded straight-line run. All parcels of every entry lie in one
/// physical page (builds stop before a page-straddling instruction).
struct BBlock {
  PhysAddr start_pa = 0;            ///< PA of the first entry's first parcel.
  PhysAddr page_pa = 0;             ///< Page base of every parcel.
  Privilege priv = Privilege::kMachine;
  u64 pmp_gen = 0;                  ///< PmpUnit::write_gen() at build time.
  const u64* frame_gen = nullptr;   ///< PhysMem write gen of the page's frame.
  u64 frame_gen_at_build = 0;
  std::vector<BBEntry> entries;
};

class BlockCache {
 public:
  static constexpr size_t kMaxBlocks = 4096;
  static constexpr size_t kMaxEntries = 64;

  struct Stats {
    u64 hits = 0;           ///< Instructions dispatched from a cached block.
    u64 misses = 0;         ///< Block builds (including ones that found nothing).
    u64 invalidations = 0;  ///< Blocks dropped by a generation guard or flush.
  };

  BBlock* find(PhysAddr pa, Privilege priv) {
    auto it = blocks_.find(key(pa, priv));
    return it == blocks_.end() ? nullptr : it->second.get();
  }

  /// Takes ownership; a full cache is flushed first (cheap, rare, and keeps
  /// every stored pointer stable between steps otherwise).
  BBlock* insert(std::unique_ptr<BBlock> blk) {
    if (blocks_.size() >= kMaxBlocks) flush_all();
    BBlock* raw = blk.get();
    blocks_[key(blk->start_pa, blk->priv)] = std::move(blk);
    return raw;
  }

  /// Drop one block whose generation guard failed.
  void invalidate(const BBlock* blk) {
    blocks_.erase(key(blk->start_pa, blk->priv));
    ++stats.invalidations;
  }

  void flush_all() {
    stats.invalidations += blocks_.size();
    blocks_.clear();
  }

  size_t size() const { return blocks_.size(); }

  Stats stats;

 private:
  // PAs are < 2^56, so the privilege tags the top bits.
  static u64 key(PhysAddr pa, Privilege priv) {
    return pa | (static_cast<u64>(priv) << 60);
  }

  std::unordered_map<u64, std::unique_ptr<BBlock>> blocks_;
};

}  // namespace ptstore
