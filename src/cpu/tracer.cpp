#include "cpu/tracer.h"

#include <cstdio>
#include <sstream>

namespace ptstore {

namespace {
std::string format_one(const TraceRecord& r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10llx", static_cast<unsigned long long>(r.pc));
  std::ostringstream os;
  os << buf << ": [" << to_string(r.priv) << "] " << isa::disassemble(r.inst);
  return os.str();
}
}  // namespace

std::vector<std::string> Tracer::format_tail(size_t n) const {
  std::vector<std::string> out;
  const size_t start = records_.size() > n ? records_.size() - n : 0;
  for (size_t i = start; i < records_.size(); ++i) {
    out.push_back(format_one(records_[i]));
  }
  return out;
}

std::string Tracer::dump() const {
  std::ostringstream os;
  for (const auto& r : records_) os << format_one(r) << "\n";
  return os.str();
}

}  // namespace ptstore
