#include "cpu/core.h"

#include "common/log.h"
#include "telemetry/trace.h"

namespace ptstore {

using isa::TrapCause;
namespace csr = isa::csr;

Core::Core(PhysMem& mem, const CoreConfig& cfg)
    : mem_(mem),
      cfg_(cfg),
      icache_(cfg.icache),
      dcache_(cfg.dcache),
      l2_(cfg.l2_enabled ? std::optional<Cache>(cfg.l2) : std::nullopt),
      mmu_(mem, pmp_, cfg.itlb, cfg.dtlb, &dcache_,
           cfg.l2_enabled ? &*l2_ : nullptr),
      bpred_(cfg.bpred),
      pc_(cfg.reset_pc),
      pmp_faults_(bank_.counter("core.pmp_faults", "accesses denied by PMP")),
      interrupts_(bank_.counter("core.interrupts", "interrupts taken")),
      traps_(bank_.counter("core.traps", "synchronous traps taken")),
      sd_pt_(bank_.counter("core.sd_pt", "sd.pt instructions executed")),
      ld_pt_(bank_.counter("core.ld_pt", "ld.pt instructions executed")) {
  // PTW trace spans need the core clock; purely observational.
  mmu_.set_clock(&cycles_, &instret_, &priv_);
  // Gauges published by merged_stats(); interned here so reports can attach
  // units and descriptions to them.
  auto& reg = telemetry::MetricsRegistry::instance();
  reg.intern("core.cycles", "simulated cycles elapsed", "cycles");
  reg.intern("core.instret", "instructions retired", "instructions");
  reg.intern("bbcache.hits", "decoded-block cache hits (host-side)");
  reg.intern("bbcache.misses", "decoded-block cache misses (host-side)");
  reg.intern("bbcache.invalidations", "decoded blocks invalidated (host-side)");
}

void Core::load_code(PhysAddr base, const std::vector<u32>& words) {
  for (size_t i = 0; i < words.size(); ++i) {
    mem_.write_u32(base + 4 * i, words[i]);
  }
}

TranslationContext Core::ctx_for(Privilege priv) const {
  return TranslationContext{
      .priv = priv,
      .sum = (mstatus_ & csr::mstatus::kSum) != 0,
      .mxr = (mstatus_ & csr::mstatus::kMxr) != 0,
  };
}

MemAccessResult Core::access(VirtAddr va, unsigned size, AccessType type,
                             AccessKind kind, u64 store_value) {
  return access_as(va, size, type, kind, priv_, store_value);
}

MemAccessResult Core::access_as(VirtAddr va, unsigned size, AccessType type,
                                AccessKind kind, Privilege priv, u64 store_value) {
  return access_with(va, size, type, kind, priv, store_value, nullptr);
}

MemAccessResult Core::access_with(VirtAddr va, unsigned size, AccessType type,
                                  AccessKind kind, Privilege priv, u64 store_value,
                                  const TranslateResult* pre) {
  MemAccessResult res;
  TranslateResult local;
  if (pre == nullptr) {
    if (!is_aligned(va, size)) {
      res.fault = isa::misaligned_for(type);
      return res;
    }
    local = mmu_.translate(va, type, kind, ctx_for(priv));
    res.cycles += local.cycles;
    if (!local.ok) {
      res.fault = local.fault;
      return res;
    }
    pre = &local;
  }
  const TranslateResult& tr = *pre;  // Caller-provided `pre` is ok & charged.

  // PMP is checked on the *physical* address of every access — including
  // TLB hits. This is exactly why PTStore survives TLB-inconsistency
  // attacks (paper §V-E5): stale virtual permissions cannot bypass it.
  PmpDecision pd = pmp_.check(tr.pa, size, type, kind, priv);
  if (!cfg_.ptstore_enabled) {
    // Baseline core: the S-bit has no meaning; re-run the check treating the
    // access as regular so only base PMP R/W/X semantics apply.
    if (pd.reason == PmpDenyReason::kSecureRegular ||
        pd.reason == PmpDenyReason::kPtInsnOutsideSecure) {
      pd = pmp_.check(tr.pa, size, type, AccessKind::kRegular, priv);
      if (pd.reason == PmpDenyReason::kSecureRegular) pd.allowed = true;
    }
  }
  if (!pd.allowed) {
    res.fault = isa::access_fault_for(type);
    pmp_faults_.add();
    return res;
  }

  if (!mem_.is_valid(tr.pa, size)) {
    res.fault = isa::access_fault_for(type);
    return res;
  }

  Cache& cache = (type == AccessType::kExecute) ? icache_ : dcache_;
  if (mem_.is_dram(tr.pa, size)) {
    // Hit latency is folded into the base CPI; only charge the excess.
    res.cycles += Cache::hierarchy_access(cache, l2_ ? &*l2_ : nullptr, tr.pa,
                                          type == AccessType::kWrite);
  } else {
    res.cycles += 20;  // Uncached MMIO access.
  }

  res.pa = tr.pa;
  if (type == AccessType::kWrite) {
    mem_.write(tr.pa, size, store_value);
    // A store to a reserved address breaks the LR/SC reservation.
    if (reservation_ && align_down(*reservation_, 8) == align_down(tr.pa, 8)) {
      reservation_.reset();
    }
  } else {
    res.value = mem_.read(tr.pa, size);
  }
  res.ok = true;
  return res;
}

bool Core::csr_accessible(u32 num, Privilege as, bool write) const {
  // CSR address encodes accessibility: bits [9:8] = lowest privilege,
  // bits [11:10] = 0b11 means read-only.
  const unsigned lowest = (num >> 8) & 0b11;
  if (static_cast<unsigned>(as) < lowest) return false;
  if (write && ((num >> 10) & 0b11) == 0b11) return false;
  return true;
}

std::optional<u64> Core::read_csr(u32 num, Privilege as) {
  if (!csr_accessible(num, as, /*write=*/false)) return std::nullopt;
  switch (num) {
    case csr::kMstatus: return mstatus_;
    case csr::kMisa: {
      // RV64 IMA + S + U. (No C/F/D: FPU disabled as in the prototype.)
      const u64 mxl = u64{2} << 62;
      return mxl | (1 << ('i' - 'a')) | (1 << ('m' - 'a')) | (1 << ('a' - 'a')) |
             (1 << ('s' - 'a')) | (1 << ('u' - 'a'));
    }
    case csr::kMedeleg: return medeleg_;
    case csr::kMideleg: return mideleg_;
    case csr::kMie: return mie_;
    case csr::kMtvec: return mtvec_;
    case csr::kMscratch: return mscratch_;
    case csr::kMepc: return mepc_;
    case csr::kMcause: return mcause_;
    case csr::kMtval: return mtval_;
    case csr::kMip: return mip_;
    case csr::kMhartid: return hartid_;
    case csr::kSstatus: {
      const u64 mask = csr::mstatus::kSie | csr::mstatus::kSpie | csr::mstatus::kSpp |
                       csr::mstatus::kSum | csr::mstatus::kMxr;
      return mstatus_ & mask;
    }
    case csr::kSie: return mie_ & mideleg_;
    case csr::kStvec: return stvec_;
    case csr::kSscratch: return sscratch_;
    case csr::kSepc: return sepc_;
    case csr::kScause: return scause_;
    case csr::kStval: return stval_;
    case csr::kSip: return mip_ & mideleg_;
    case csr::kSatp: return mmu_.satp();
    case csr::kMtimecmp: return mtimecmp_;
    case csr::kCycle: return cycles_;
    case csr::kTime: return cycles_;  // Simple 1:1 timebase.
    case csr::kInstret: return instret_;
    case csr::kPmpcfg0:
    case csr::kPmpcfg2: {
      const unsigned base = (num == csr::kPmpcfg0) ? 0 : 8;
      u64 v = 0;
      for (unsigned i = 0; i < 8; ++i) v |= u64{pmp_.cfg(base + i)} << (8 * i);
      return v;
    }
    default:
      if (num >= csr::kPmpaddr0 && num < csr::kPmpaddr0 + kPmpEntryCount) {
        return pmp_.addr(num - csr::kPmpaddr0);
      }
      return std::nullopt;
  }
}

bool Core::write_csr(u32 num, u64 value, Privilege as) {
  if (!csr_accessible(num, as, /*write=*/true)) return false;
  switch (num) {
    case csr::kMstatus:
      mstatus_ = value;
      return true;
    case csr::kMisa:
      return true;  // WARL: writes ignored.
    case csr::kMedeleg:
      medeleg_ = value;
      return true;
    case csr::kMideleg:
      mideleg_ = value;
      return true;
    case csr::kMie:
      mie_ = value;
      return true;
    case csr::kMtvec:
      mtvec_ = value & ~u64{3};  // Direct mode only.
      return true;
    case csr::kMscratch:
      mscratch_ = value;
      return true;
    case csr::kMepc:
      mepc_ = value & ~u64{1};
      return true;
    case csr::kMcause:
      mcause_ = value;
      return true;
    case csr::kMtval:
      mtval_ = value;
      return true;
    case csr::kMip:
      mip_ = value;
      return true;
    case csr::kSstatus: {
      const u64 mask = csr::mstatus::kSie | csr::mstatus::kSpie | csr::mstatus::kSpp |
                       csr::mstatus::kSum | csr::mstatus::kMxr;
      mstatus_ = (mstatus_ & ~mask) | (value & mask);
      return true;
    }
    case csr::kSie:
      mie_ = (mie_ & ~mideleg_) | (value & mideleg_);
      return true;
    case csr::kStvec:
      stvec_ = value & ~u64{3};
      return true;
    case csr::kSscratch:
      sscratch_ = value;
      return true;
    case csr::kSepc:
      sepc_ = value & ~u64{1};
      return true;
    case csr::kScause:
      scause_ = value;
      return true;
    case csr::kStval:
      stval_ = value;
      return true;
    case csr::kSip:
      mip_ = (mip_ & ~mideleg_) | (value & mideleg_);
      return true;
    case csr::kMtimecmp:
      mtimecmp_ = value;
      mip_ &= ~(u64{1} << csr::irq::kMti);  // Writing mtimecmp clears MTIP.
      return true;
    case csr::kSatp:
      if (!cfg_.ptstore_enabled) {
        // Baseline core: satp.S (bit 59) is a plain ASID bit with no
        // walker-side meaning; keep it but the MMU check is off. We clear it
        // so isa::satp::secure_check() stays false on the baseline.
        value &= ~(u64{1} << 59);
      }
      mmu_.set_satp(value);
      return true;
    case csr::kPmpcfg0:
    case csr::kPmpcfg2: {
      const unsigned base = (num == csr::kPmpcfg0) ? 0 : 8;
      for (unsigned i = 0; i < 8; ++i) {
        u8 b = static_cast<u8>(value >> (8 * i));
        if (!cfg_.ptstore_enabled) b &= ~pmpcfg::kS;  // S-bit is reserved-0.
        pmp_.set_cfg(base + i, b);
      }
      return true;
    }
    default:
      if (num >= csr::kPmpaddr0 && num < csr::kPmpaddr0 + kPmpEntryCount) {
        pmp_.set_addr(num - csr::kPmpaddr0, value);
        return true;
      }
      return false;
  }
}

CoreArchState Core::arch_state() const {
  CoreArchState st;
  st.regs = regs_;
  st.pc = pc_;
  st.priv = priv_;
  st.cycles = cycles_;
  st.instret = instret_;
  st.mstatus = mstatus_;
  st.mtvec = mtvec_;
  st.medeleg = medeleg_;
  st.mideleg = mideleg_;
  st.mie = mie_;
  st.mip = mip_;
  st.mscratch = mscratch_;
  st.mepc = mepc_;
  st.mcause = mcause_;
  st.mtval = mtval_;
  st.stvec = stvec_;
  st.sscratch = sscratch_;
  st.sepc = sepc_;
  st.scause = scause_;
  st.stval = stval_;
  st.satp = mmu_.satp();
  st.mtimecmp = mtimecmp_;
  for (unsigned i = 0; i < kPmpEntryCount; ++i) {
    st.pmp_cfg[i] = pmp_.cfg(i);
    st.pmp_addr[i] = pmp_.addr(i);
  }
  return st;
}

void Core::restore_arch_state(const CoreArchState& st) {
  regs_ = st.regs;
  pc_ = st.pc;
  priv_ = st.priv;
  cycles_ = st.cycles;
  instret_ = st.instret;
  mstatus_ = st.mstatus;
  mtvec_ = st.mtvec;
  medeleg_ = st.medeleg;
  mideleg_ = st.mideleg;
  mie_ = st.mie;
  mip_ = st.mip;
  mscratch_ = st.mscratch;
  mepc_ = st.mepc;
  mcause_ = st.mcause;
  mtval_ = st.mtval;
  stvec_ = st.stvec;
  sscratch_ = st.sscratch;
  sepc_ = st.sepc;
  scause_ = st.scause;
  stval_ = st.stval;
  mmu_.set_satp(st.satp);
  mtimecmp_ = st.mtimecmp;
  // PMP cfg writes respect lock bits; restore addresses first, then cfgs.
  for (unsigned i = 0; i < kPmpEntryCount; ++i) pmp_.set_addr(i, st.pmp_addr[i]);
  for (unsigned i = 0; i < kPmpEntryCount; ++i) pmp_.set_cfg(i, st.pmp_cfg[i]);
  // Reset microarchitectural state to cold: execution after restore is
  // deterministic (and timing-conservative).
  icache_.invalidate_all();
  dcache_.invalidate_all();
  if (l2_) l2_->invalidate_all();
  mmu_.sfence(std::nullopt, std::nullopt);
  reservation_.reset();
  bbcache_.flush_all();
  bb_cur_ = nullptr;
  bb_flush_pending_ = false;
  bb_table_gen_ = mem_.frame_table_gen();
}

StatSet Core::merged_stats() const {
  StatSet out;
  out.merge(stats());
  out.merge(icache_.stats());
  out.merge(dcache_.stats());
  if (l2_) out.merge(l2_->stats());
  out.merge(mmu_.stats());
  out.merge(mmu_.itlb().stats());
  out.merge(mmu_.dtlb().stats());
  out.merge(bpred_.stats());
  out.set("core.cycles", cycles_);
  out.set("core.instret", instret_);
  if (cfg_.decode_cache) {
    // Host-side counters; only published when the cache is on so reports
    // with it off stay byte-identical to the classic interpreter's.
    out.set("bbcache.hits", bbcache_.stats.hits);
    out.set("bbcache.misses", bbcache_.stats.misses);
    out.set("bbcache.invalidations", bbcache_.stats.invalidations);
  }
  return out;
}

void Core::clear_all_stats() {
  clear_stats();
  icache_.clear_stats();
  dcache_.clear_stats();
  if (l2_) l2_->clear_stats();
  mmu_.clear_stats();
  mmu_.itlb().clear_stats();
  mmu_.dtlb().clear_stats();
  bpred_.clear_stats();
  bbcache_.stats = {};
}

void Core::update_timer_pending() {
  if (cycles_ >= mtimecmp_) {
    mip_ |= u64{1} << csr::irq::kMti;
  } else {
    mip_ &= ~(u64{1} << csr::irq::kMti);
  }
}

bool Core::interrupt_pending() const {
  return (mip_ & mie_) != 0;
}

void Core::set_ssip(bool pending) {
  if (pending) {
    mip_ |= u64{1} << csr::irq::kSsi;
  } else {
    mip_ &= ~(u64{1} << csr::irq::kSsi);
  }
}

bool Core::ssip() const { return ((mip_ >> csr::irq::kSsi) & 1) != 0; }

bool Core::maybe_take_interrupt() {
  update_timer_pending();
  const u64 pending = mip_ & mie_;
  if (pending == 0) return false;

  // Priority order per the privileged spec: MTI > MSI > STI > SSI (subset).
  static constexpr unsigned kOrder[] = {csr::irq::kMti, csr::irq::kMsi,
                                        csr::irq::kSti, csr::irq::kSsi};
  for (const unsigned code : kOrder) {
    if (!((pending >> code) & 1)) continue;
    const bool delegated = ((mideleg_ >> code) & 1) != 0;
    if (!delegated) {
      // M-target: taken if we are below M, or in M with MIE set.
      const bool enabled = priv_ != Privilege::kMachine ||
                           (mstatus_ & csr::mstatus::kMie) != 0;
      if (!enabled) continue;
      take_interrupt(code, /*to_supervisor=*/false);
      return true;
    }
    // S-target: never taken while in M; in S requires SIE; in U always.
    if (priv_ == Privilege::kMachine) continue;
    const bool enabled = priv_ == Privilege::kUser ||
                         (mstatus_ & csr::mstatus::kSie) != 0;
    if (!enabled) continue;
    take_interrupt(code, /*to_supervisor=*/true);
    return true;
  }
  return false;
}

void Core::take_interrupt(unsigned code, bool to_supervisor) {
  cycles_ += cfg_.timing.trap_entry;
  interrupts_.add();
  if (telemetry::EventRing* tr = telemetry::tracing()) {
    tr->instant(telemetry::Subsystem::kTrap, "interrupt", cycles_, instret_,
                static_cast<u8>(priv_), code);
  }
  const u64 cause = csr::irq::kCauseInterrupt | code;
  if (to_supervisor) {
    scause_ = cause;
    stval_ = 0;
    sepc_ = pc_;
    mstatus_ = insert_bits(mstatus_, 8, 1, priv_ == Privilege::kSupervisor ? 1 : 0);
    const u64 sie = (mstatus_ & csr::mstatus::kSie) ? 1 : 0;
    mstatus_ = insert_bits(mstatus_, 5, 1, sie);
    mstatus_ &= ~csr::mstatus::kSie;
    priv_ = Privilege::kSupervisor;
    if (sintr_hook_ && sintr_hook_(*this, code)) {
      do_sret();
      return;
    }
    pc_ = stvec_;
  } else {
    mcause_ = cause;
    mtval_ = 0;
    mepc_ = pc_;
    mstatus_ = insert_bits(mstatus_, csr::mstatus::kMppShift, 2,
                           static_cast<u64>(priv_));
    const u64 mie = (mstatus_ & csr::mstatus::kMie) ? 1 : 0;
    mstatus_ = insert_bits(mstatus_, 7, 1, mie);
    mstatus_ &= ~csr::mstatus::kMie;
    priv_ = Privilege::kMachine;
    pc_ = mtvec_;
  }
}

void Core::take_trap(TrapCause cause, u64 tval) {
  const u64 code = static_cast<u64>(cause);
  const bool delegate = priv_ != Privilege::kMachine && (medeleg_ >> code) & 1;
  cycles_ += cfg_.timing.trap_entry;
  traps_.add();
  if (telemetry::EventRing* tr = telemetry::tracing()) {
    tr->instant(telemetry::Subsystem::kTrap, "trap", cycles_, instret_,
                static_cast<u8>(priv_), code);
  }

  if (delegate) {
    scause_ = code;
    stval_ = tval;
    sepc_ = pc_;
    // sstatus.SPP/SPIE bookkeeping.
    mstatus_ = insert_bits(mstatus_, 8, 1, priv_ == Privilege::kSupervisor ? 1 : 0);
    const u64 sie = (mstatus_ & csr::mstatus::kSie) ? 1 : 0;
    mstatus_ = insert_bits(mstatus_, 5, 1, sie);
    mstatus_ &= ~csr::mstatus::kSie;
    priv_ = Privilege::kSupervisor;

    if (strap_hook_) {
      const TrapHookResult hr = strap_hook_(*this, cause, tval);
      if (hr.handled) {
        // Kernel model handled it in host code; return like sret.
        do_sret();
        return;
      }
    }
    pc_ = stvec_;
  } else {
    mcause_ = code;
    mtval_ = tval;
    mepc_ = pc_;
    mstatus_ = insert_bits(mstatus_, csr::mstatus::kMppShift, 2,
                           static_cast<u64>(priv_));
    const u64 mie = (mstatus_ & csr::mstatus::kMie) ? 1 : 0;
    mstatus_ = insert_bits(mstatus_, 7, 1, mie);
    mstatus_ &= ~csr::mstatus::kMie;
    priv_ = Privilege::kMachine;
    pc_ = mtvec_;
  }
}

void Core::do_sret() {
  const bool spp = (mstatus_ & csr::mstatus::kSpp) != 0;
  const u64 spie = (mstatus_ & csr::mstatus::kSpie) ? 1 : 0;
  mstatus_ = insert_bits(mstatus_, 1, 1, spie);   // SIE = SPIE
  mstatus_ |= csr::mstatus::kSpie;
  mstatus_ &= ~csr::mstatus::kSpp;
  priv_ = spp ? Privilege::kSupervisor : Privilege::kUser;
  pc_ = sepc_;
  cycles_ += cfg_.timing.trap_return;
}

void Core::do_mret() {
  const u64 mpp = bits(mstatus_, csr::mstatus::kMppShift, 2);
  const u64 mpie = (mstatus_ & csr::mstatus::kMpie) ? 1 : 0;
  mstatus_ = insert_bits(mstatus_, 3, 1, mpie);  // MIE = MPIE
  mstatus_ |= csr::mstatus::kMpie;
  mstatus_ = insert_bits(mstatus_, csr::mstatus::kMppShift, 2, 0);
  priv_ = static_cast<Privilege>(mpp == 2 ? 0 : mpp);  // 2 is reserved.
  pc_ = mepc_;
  cycles_ += cfg_.timing.trap_return;
}

StepResult Core::raise(TrapCause cause, u64 tval) {
  take_trap(cause, tval);
  return {StopReason::kTrapped, cause};
}

StepResult Core::run(u64 max_insts) {
  for (u64 i = 0; i < max_insts; ++i) {
    const StepResult r = step();
    if (r.stop == StopReason::kEbreakHalt || r.stop == StopReason::kWfi) return r;
  }
  return {StopReason::kInstLimit, TrapCause::kNone};
}

}  // namespace ptstore
