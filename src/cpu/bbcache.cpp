// Decoded basic-block cache: build + per-step dispatch (see bbcache.h for
// the coherence story). The invariant throughout: every simulated effect —
// cycles, TLB/PTW/cache counters, trap behaviour — happens in exactly the
// order and quantity the classic fetch/decode path (step_fetch_decode)
// would produce. Only host work with no simulated trace (the PMP way scan
// when it allows, the physical parcel reads, decode_any) is skipped, and
// each skip is justified by a generation guard checked *before* the skip.
#include "common/bits.h"
#include "cpu/core.h"
#include "telemetry/trace.h"

namespace ptstore {

using isa::Inst;
using isa::Op;

namespace {

/// Ops that end a straight-line run. Purely a block-shaping heuristic:
/// dispatch revalidates everything each step, so correctness never depends
/// on where a block ends.
bool ends_block(const Inst& in) {
  switch (in.op) {
    case Op::kJal: case Op::kJalr:
    case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBge: case Op::kBltu: case Op::kBgeu:
    case Op::kEcall: case Op::kEbreak:
    case Op::kMret: case Op::kSret: case Op::kWfi:
    case Op::kSfenceVma: case Op::kFenceI:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool Core::bb_fetch_pmp_allowed(PhysAddr pa) const {
  PmpDecision pd =
      pmp_.check(pa, 2, AccessType::kExecute, AccessKind::kRegular, priv_);
  if (!cfg_.ptstore_enabled) {
    // Mirror of access_with's baseline-core fixup: the S-bit has no meaning.
    if (pd.reason == PmpDenyReason::kSecureRegular ||
        pd.reason == PmpDenyReason::kPtInsnOutsideSecure) {
      pd = pmp_.check(pa, 2, AccessType::kExecute, AccessKind::kRegular, priv_);
      if (pd.reason == PmpDenyReason::kSecureRegular) pd.allowed = true;
    }
  }
  return pd.allowed;
}

BBlock* Core::bb_build(PhysAddr pa0) {
  const u64* fgen = mem_.frame_write_gen(pa0);
  // Unwritten frames hold only zero bytes (an illegal encoding), and MMIO is
  // never cached — both fall back to the classic path.
  if (fgen == nullptr) return nullptr;

  auto blk = std::make_unique<BBlock>();
  blk->start_pa = pa0;
  blk->page_pa = align_down(pa0, kPageSize);
  blk->priv = priv_;
  blk->pmp_gen = pmp_.write_gen();
  blk->frame_gen = fgen;
  blk->frame_gen_at_build = *fgen;

  PhysAddr pa = pa0;
  while (blk->entries.size() < BlockCache::kMaxEntries) {
    const u64 off = pa - blk->page_pa;
    if (off + 2 > kPageSize) break;
    if (!bb_fetch_pmp_allowed(pa)) break;
    u32 word = mem_.read_u16(pa);
    if ((word & 0b11) == 0b11) {
      // A 32-bit encoding must not straddle the page: its second parcel
      // would live in a different frame than the one we guard.
      if (off + 4 > kPageSize) break;
      if (!bb_fetch_pmp_allowed(pa + 2)) break;
      word |= static_cast<u32>(mem_.read_u16(pa + 2)) << 16;
    }
    const Inst in = isa::decode_any(word);
    if (in.op == Op::kIllegal) break;
    if (in.is_pt_access() && !cfg_.ptstore_enabled) break;
    blk->entries.push_back(BBEntry{in, static_cast<u16>(off)});
    if (ends_block(in)) break;
    pa += in.len;
  }

  if (blk->entries.empty()) return nullptr;
  if (telemetry::EventRing* tr = telemetry::tracing()) {
    tr->instant(telemetry::Subsystem::kBBCache, "bb_fill", cycles_, instret_,
                static_cast<u8>(priv_), pa0);
  }
  return bbcache_.insert(std::move(blk));
}

StepResult Core::step_cached() {
  // Deferred whole-cache flushes: fence.i, and checkpoint restores that
  // rebuilt the frame table (dangling frame_gen pointers).
  if (bb_flush_pending_ || bb_table_gen_ != mem_.frame_table_gen()) {
    bbcache_.flush_all();
    bb_flush_pending_ = false;
    bb_table_gen_ = mem_.frame_table_gen();
    bb_cur_ = nullptr;
  }

  if (!is_aligned(pc_, 2)) return step_fetch_decode(nullptr);

  // The real per-step translation. This is what keeps satp writes,
  // sfence.vma, ASID switches, and remaps hook-free: the physical PC is
  // re-derived every step with full TLB/PTW stat effects.
  TranslateResult t0 = mmu_.translate(pc_, AccessType::kExecute,
                                      AccessKind::kRegular, ctx_for(priv_));
  cycles_ += t0.cycles;
  if (!t0.ok) {
    bb_cur_ = nullptr;
    return raise(t0.fault, pc_);
  }

  // Locate the block: the cursor from the previous step if it still points
  // at this exact physical PC and privilege, else a map lookup.
  BBlock* blk = nullptr;
  size_t idx = 0;
  bool from_cache = true;
  if (bb_cur_ != nullptr && bb_cur_->priv == priv_ &&
      bb_idx_ < bb_cur_->entries.size() &&
      bb_cur_->page_pa + bb_cur_->entries[bb_idx_].page_off == t0.pa) {
    blk = bb_cur_;
    idx = bb_idx_;
  } else {
    blk = bbcache_.find(t0.pa, priv_);
  }
  bb_cur_ = nullptr;

  // Generation guards — checked before any baseline effect is skipped.
  if (blk != nullptr && (blk->pmp_gen != pmp_.write_gen() ||
                         *blk->frame_gen != blk->frame_gen_at_build)) {
    if (telemetry::EventRing* tr = telemetry::tracing()) {
      tr->instant(telemetry::Subsystem::kBBCache, "bb_evict", cycles_, instret_,
                  static_cast<u8>(priv_), blk->start_pa);
    }
    bbcache_.invalidate(blk);
    blk = nullptr;
    idx = 0;
  }
  if (blk == nullptr) {
    ++bbcache_.stats.misses;
    blk = bb_build(t0.pa);
    if (blk == nullptr) return step_fetch_decode(&t0);
    idx = 0;
    from_cache = false;
  }
  if (from_cache) ++bbcache_.stats.hits;

  // By value: a hook inside execute() may restore a checkpoint and flush the
  // cache, which would dangle a reference into blk->entries.
  const Inst in = blk->entries[idx].inst;

  // Timing of the fetch the classic path would perform. Blocks only cover
  // DRAM (frame_gen != nullptr implies is_dram), so the MMIO branch of
  // access_with is unreachable here.
  cycles_ += Cache::hierarchy_access(icache_, l2_ ? &*l2_ : nullptr, t0.pa,
                                     /*is_write=*/false);
  if (in.len == 4) {
    // The high parcel lies in the same page (builds reject straddlers), so
    // this translation sees the same leaf: it cannot fault, and its TLB/
    // I-cache effects replay the classic path's second-parcel fetch.
    TranslateResult t1 = mmu_.translate(pc_ + 2, AccessType::kExecute,
                                        AccessKind::kRegular, ctx_for(priv_));
    cycles_ += t1.cycles;
    if (!t1.ok) return raise(t1.fault, pc_ + 2);
    assert(t1.pa == t0.pa + 2);
    cycles_ += Cache::hierarchy_access(icache_, l2_ ? &*l2_ : nullptr, t1.pa,
                                       /*is_write=*/false);
  }

  if (trace_hook_) trace_hook_(*this, pc_, in);
  // Illegal and disabled-pt encodings never enter a block, so the classic
  // path's post-decode checks are compile-time-true here.

  const u64 prev_pc = pc_;
  const u64 inv_before = bbcache_.stats.invalidations;
  const StepResult r = execute(in);
  if (r.stop != StopReason::kTrapped) ++instret_;

  // Arm the cursor when execution fell through to the next entry. The
  // invalidation-counter check proves no block was destroyed during
  // execute() (e.g. a checkpoint restore inside a trap hook), so blk is
  // still safe to dereference.
  if (r.stop == StopReason::kNone &&
      bbcache_.stats.invalidations == inv_before &&
      idx + 1 < blk->entries.size() && pc_ == prev_pc + in.len &&
      priv_ == blk->priv) {
    bb_cur_ = blk;
    bb_idx_ = idx + 1;
  }
  return r;
}

}  // namespace ptstore
