// Branch prediction model: a gshare-style table of 2-bit saturating
// counters plus a direct-mapped BTB for indirect targets. BOOM's front end
// predicts; the interpreter charges the misprediction penalty only when
// this model is wrong, replacing the flat taken-branch penalty.
//
// Only interpreted guest code reaches this model; the kernel-model cost
// constants are calibrated independently (see DESIGN.md §2).
#pragma once

#include <vector>

#include "common/bits.h"
#include "common/stats.h"
#include "common/types.h"
#include "telemetry/metrics.h"

namespace ptstore {

struct BranchPredictorConfig {
  bool enabled = true;
  unsigned table_bits = 9;    ///< 512 2-bit counters.
  unsigned history_bits = 6;  ///< Global history length (gshare).
  unsigned btb_bits = 6;      ///< 64-entry BTB for jump targets.
  Cycles mispredict_penalty = 7;  ///< BOOM-small front-end refill.
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& cfg)
      : cfg_(cfg),
        counters_(size_t{1} << cfg.table_bits, 1),  // Weakly not-taken.
        btb_(size_t{1} << cfg.btb_bits),
        hits_(bank_.counter("bp.hits", "correct branch predictions")),
        misses_(bank_.counter("bp.misses", "branch mispredictions")),
        btb_hits_(bank_.counter("bp.btb_hits", "BTB target hits")),
        btb_misses_(bank_.counter("bp.btb_misses", "BTB target misses")) {}

  /// Predict the direction of a conditional branch at `pc`.
  bool predict_taken(u64 pc) const {
    return counters_[index(pc)] >= 2;
  }

  /// Update with the resolved direction; returns the cycles to charge
  /// (0 on a correct prediction, the refill penalty otherwise).
  Cycles resolve_branch(u64 pc, bool taken) {
    const bool predicted = predict_taken(pc);
    u8& ctr = counters_[index(pc)];
    if (taken && ctr < 3) ++ctr;
    if (!taken && ctr > 0) --ctr;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_lo(cfg_.history_bits);
    if (predicted == taken) {
      hits_.add();
      return 0;
    }
    misses_.add();
    return cfg_.mispredict_penalty;
  }

  /// Resolve an unconditional jump/call/return through the BTB: the first
  /// encounter (or a target change) pays the penalty, repeats are free.
  Cycles resolve_jump(u64 pc, u64 target) {
    BtbEntry& e = btb_[btb_index(pc)];
    const bool hit = e.valid && e.pc == pc && e.target == target;
    e = BtbEntry{true, pc, target};
    if (hit) {
      btb_hits_.add();
      return 0;
    }
    btb_misses_.add();
    return cfg_.mispredict_penalty;
  }

  const StatSet& stats() const {
    bank_.snapshot_into(stats_);
    return stats_;
  }
  void clear_stats() {
    bank_.clear();
    stats_.clear();
  }
  const BranchPredictorConfig& config() const { return cfg_; }

  /// Prediction accuracy over everything resolved so far.
  double accuracy() const {
    const u64 n = hits_.value();
    const u64 d = misses_.value();
    return (n + d) == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(n + d);
  }

 private:
  struct BtbEntry {
    bool valid = false;
    u64 pc = 0;
    u64 target = 0;
  };

  size_t index(u64 pc) const {
    return static_cast<size_t>(((pc >> 1) ^ history_) & mask_lo(cfg_.table_bits));
  }
  size_t btb_index(u64 pc) const {
    return static_cast<size_t>((pc >> 1) & mask_lo(cfg_.btb_bits));
  }

  BranchPredictorConfig cfg_;
  std::vector<u8> counters_;
  std::vector<BtbEntry> btb_;
  u64 history_ = 0;
  telemetry::CounterBank bank_;
  telemetry::Counter hits_;
  telemetry::Counter misses_;
  telemetry::Counter btb_hits_;
  telemetry::Counter btb_misses_;
  mutable StatSet stats_;
};

}  // namespace ptstore
