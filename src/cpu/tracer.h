// Instruction tracer: plugs into Core's trace hook and records (or prints)
// a disassembled execution history — the debugging tool you want when a
// guest program walks off a cliff. Bounded ring buffer so tracing a
// billion-instruction run cannot exhaust host memory.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "cpu/core.h"

namespace ptstore {

struct TraceRecord {
  u64 pc = 0;
  isa::Inst inst;
  Privilege priv = Privilege::kMachine;
  u64 instret = 0;
  /// Effective address of a load/store/AMO, computed from the pre-execution
  /// register file (the hook fires after decode, before execution). ptlint's
  /// dynamic cross-check replays these against the static classification.
  bool has_ea = false;
  u64 ea = 0;
};

class Tracer {
 public:
  /// Keep at most `capacity` most-recent records.
  explicit Tracer(size_t capacity = 1024) : capacity_(capacity) {}

  /// Attach to a core (replaces any existing trace hook).
  void attach(Core& core) {
    core.set_trace_hook([this](const Core& c, u64 pc, const isa::Inst& in) {
      on_step(c, pc, in);
    });
  }
  /// Detach (clears the core's hook). The recorded history is kept.
  void detach(Core& core) { core.set_trace_hook(nullptr); }

  const std::deque<TraceRecord>& records() const { return records_; }
  u64 total_traced() const { return total_; }
  void clear() {
    records_.clear();
    total_ = 0;
  }

  /// Last `n` records rendered as "pc: <priv> disassembly" lines.
  std::vector<std::string> format_tail(size_t n) const;

  /// Full formatted dump of the retained window.
  std::string dump() const;

 private:
  void on_step(const Core& core, u64 pc, const isa::Inst& in) {
    // Capacity 0 means "count only, retain nothing" — popping here would be
    // undefined behaviour on the empty deque.
    if (capacity_ == 0) {
      ++total_;
      return;
    }
    if (records_.size() == capacity_) records_.pop_front();
    TraceRecord rec{pc, in, core.priv(), core.instret(), false, 0};
    if (in.is_load() || in.is_store() || in.is_amo()) {
      rec.has_ea = true;
      rec.ea = core.reg(in.rs1) + (in.is_amo() ? 0 : static_cast<u64>(in.imm));
    }
    records_.push_back(rec);
    ++total_;
  }

  size_t capacity_;
  std::deque<TraceRecord> records_;
  u64 total_ = 0;
};

}  // namespace ptstore
