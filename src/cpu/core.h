// RV64 interpreter core with M/S/U privilege, PMP (with PTStore S-bit),
// Sv39 MMU, L1 caches/TLBs, and a cycle-approximate timing model sized to a
// small BOOM-class core. Executes real machine code produced by the
// assembler, including the PTStore ld.pt/sd.pt instructions.
//
// The kernel model (src/kernel) drives the same access path through
// access_as_kernel(), so every page-table and token access in the system is
// subject to the identical PMP/MMU checks the guest ISA sees.
#pragma once

#include <array>
#include <functional>
#include <optional>

#include "cache/cache.h"
#include "cpu/bbcache.h"
#include "cpu/branch_predictor.h"
#include "cache/tlb.h"
#include "common/stats.h"
#include "isa/csr.h"
#include "isa/inst.h"
#include "isa/trap.h"
#include "mem/phys_mem.h"
#include "mmu/mmu.h"
#include "pmp/pmp.h"
#include "telemetry/metrics.h"

namespace ptstore {

/// Cycle costs of the timing model (BOOM-small-flavoured approximations;
/// the evaluation depends on ratios, not absolute values).
struct TimingConfig {
  Cycles base_cpi = 1;
  Cycles branch_taken_penalty = 2;
  Cycles jump_penalty = 2;
  Cycles mul_extra = 2;
  Cycles div_extra = 20;
  Cycles csr_extra = 3;
  Cycles trap_entry = 30;
  Cycles trap_return = 10;
  Cycles fence_extra = 20;
  Cycles sfence_extra = 30;
  Cycles amo_extra = 5;
};

struct CoreConfig {
  PhysAddr reset_pc = kDramBase;
  CacheConfig icache{.name = "L1I", .size_bytes = KiB(16), .ways = 4};
  CacheConfig dcache{.name = "L1D", .size_bytes = KiB(16), .ways = 4};
  /// Optional unified L2 behind both L1s. Off by default: the paper's
  /// prototype (Table II) has no L2 — enable for what-if studies only.
  bool l2_enabled = false;
  CacheConfig l2{.name = "L2", .size_bytes = KiB(256), .ways = 8,
                 .hit_latency = 10, .miss_penalty = 60};
  TlbConfig itlb{.name = "ITLB", .entries = 32};
  TlbConfig dtlb{.name = "DTLB", .entries = 8};
  TimingConfig timing;
  BranchPredictorConfig bpred;
  /// When false, the ld.pt/sd.pt decoder entries are disabled and the PMP
  /// S-bit is ignored — the unmodified baseline core of the evaluation.
  bool ptstore_enabled = true;
  /// Decoded basic-block cache (see cpu/bbcache.h). Pure host-speed
  /// optimization: simulated cycles and stats are bit-identical either way.
  bool decode_cache = true;
};

/// Outcome of one memory access performed by the core.
struct MemAccessResult {
  bool ok = false;
  isa::TrapCause fault = isa::TrapCause::kNone;
  u64 value = 0;       ///< Loaded value (loads only).
  PhysAddr pa = 0;     ///< Final physical address when translation succeeded.
  Cycles cycles = 0;   ///< Cache + PTW cycles charged.
};

/// Why step()/run() stopped.
enum class StopReason : u8 {
  kNone = 0,        ///< Instruction retired normally.
  kTrapped,         ///< Trap taken (vectored to a handler).
  kEbreakHalt,      ///< ebreak with no debug handler — test-program halt.
  kWfi,             ///< wfi with no pending interrupt — idle halt.
  kInstLimit,       ///< run() exhausted its instruction budget.
};

struct StepResult {
  StopReason stop = StopReason::kNone;
  isa::TrapCause trap = isa::TrapCause::kNone;
};

class Core;

/// Result of a supervisor trap hook (the C++ kernel model intercepting
/// traps that would vector to stvec).
struct TrapHookResult {
  bool handled = false;  ///< If false, the core vectors to stvec as usual.
};
using STrapHook = std::function<TrapHookResult(Core&, isa::TrapCause, u64 tval)>;

/// Per-instruction trace callback: fires after decode, before execution.
using TraceHook = std::function<void(const Core&, u64 pc, const isa::Inst&)>;

/// Supervisor *interrupt* hook: fires when an S-targeted interrupt is taken
/// (after sepc/scause are set). Returning true performs an sret-like return
/// to sepc instead of executing guest handler code at stvec — the kernel
/// model's interrupt handler.
using SIntrHook = std::function<bool(Core&, unsigned irq_code)>;

/// Complete architectural state of a core, for checkpoints. Microarch
/// state (caches, TLBs, branch predictor) is deliberately excluded; restore
/// resets it to cold, making post-restore execution deterministic.
struct CoreArchState {
  std::array<u64, 32> regs{};
  u64 pc = 0;
  Privilege priv = Privilege::kMachine;
  Cycles cycles = 0;
  u64 instret = 0;
  u64 mstatus = 0, mtvec = 0, medeleg = 0, mideleg = 0, mie = 0, mip = 0;
  u64 mscratch = 0, mepc = 0, mcause = 0, mtval = 0;
  u64 stvec = 0, sscratch = 0, sepc = 0, scause = 0, stval = 0;
  u64 satp = 0;
  u64 mtimecmp = ~u64{0};
  std::array<u8, kPmpEntryCount> pmp_cfg{};
  std::array<u64, kPmpEntryCount> pmp_addr{};
};

class Core {
 public:
  Core(PhysMem& mem, const CoreConfig& cfg);

  /// Architectural checkpoint support (see CoreArchState).
  CoreArchState arch_state() const;
  void restore_arch_state(const CoreArchState& st);

  // ---- architectural state ----
  u64 reg(unsigned idx) const { return regs_[idx & 31]; }
  void set_reg(unsigned idx, u64 v) {
    if ((idx & 31) != 0) regs_[idx & 31] = v;
  }
  u64 pc() const { return pc_; }
  void set_pc(u64 pc) { pc_ = pc; }
  Privilege priv() const { return priv_; }
  void set_priv(Privilege p) { priv_ = p; }

  /// CSR access with privilege + side-effect handling. Returns nullopt when
  /// the CSR does not exist or is not accessible at `as` (caller raises
  /// illegal instruction).
  std::optional<u64> read_csr(u32 num, Privilege as);
  bool write_csr(u32 num, u64 value, Privilege as);

  PmpUnit& pmp() { return pmp_; }
  Mmu& mmu() { return mmu_; }
  /// Read-only decode-cache view (tests assert it restores cold).
  const BlockCache& bbcache() const { return bbcache_; }
  BranchPredictor& bpred() { return bpred_; }
  const BranchPredictor& bpred() const { return bpred_; }
  PhysMem& mem() { return mem_; }
  const CoreConfig& config() const { return cfg_; }

  // ---- execution ----
  StepResult step();
  /// Run until a halt condition or `max_insts` instructions retire.
  StepResult run(u64 max_insts);

  Cycles cycles() const { return cycles_; }
  void add_cycles(Cycles c) { cycles_ += c; }
  u64 instret() const { return instret_; }
  /// Charge `n` abstractly-executed instructions (workload models).
  void retire_abstract(u64 n, Cycles per_inst = 1) {
    instret_ += n;
    cycles_ += n * per_inst;
  }

  /// Install the C++ kernel's trap intercept. Traps delegated to S-mode call
  /// the hook first; if it reports handled, the core performs an sret-like
  /// return to sepc instead of executing guest handler code.
  void set_strap_hook(STrapHook hook) { strap_hook_ = std::move(hook); }

  /// Raise a trap from outside step() (kernel model surfacing a fault).
  void take_trap(isa::TrapCause cause, u64 tval);

  /// Machine timer (CLINT mtimecmp equivalent; mtime == cycle counter).
  u64 mtimecmp() const { return mtimecmp_; }
  void set_mtimecmp(u64 v) { mtimecmp_ = v; }
  /// True if any enabled interrupt is pending at the current privilege.
  bool interrupt_pending() const;

  /// Hart index reported by mhartid (SMP topology; 0 on a single-hart
  /// system). Set once by System when the hart is wired up.
  unsigned hartid() const { return hartid_; }
  void set_hartid(unsigned id) { hartid_ = id; }

  /// Assert / retract the supervisor software-interrupt pending bit — the
  /// CLINT MSIP->SSIP delivery path the SBI uses for cross-hart IPIs.
  void set_ssip(bool pending);
  bool ssip() const;

  /// Install a per-instruction trace callback (see cpu/tracer.h); pass
  /// nullptr to disable.
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

  /// Install the kernel model's S-interrupt intercept (see SIntrHook).
  void set_sintr_hook(SIntrHook hook) { sintr_hook_ = std::move(hook); }

  // ---- memory path shared with the kernel model ----
  /// Perform one data access exactly as an executed instruction would:
  /// translation, PMP (with AccessKind), cache timing, and the actual
  /// read/write. Loads return the zero-extended value.
  MemAccessResult access(VirtAddr va, unsigned size, AccessType type,
                         AccessKind kind, u64 store_value = 0);

  /// Same, but with an explicit effective privilege (the kernel model runs
  /// logically in S-mode regardless of the core's current mode).
  MemAccessResult access_as(VirtAddr va, unsigned size, AccessType type,
                            AccessKind kind, Privilege priv, u64 store_value = 0);

  const StatSet& stats() const {
    bank_.snapshot_into(stats_);
    return stats_;
  }
  /// Reset the core's own event counters (cache/TLB/MMU stats unaffected,
  /// matching the old `stats().clear()` behaviour).
  void clear_stats() {
    bank_.clear();
    stats_.clear();
  }

  /// Merged view of every hardware counter: core events, L1I/L1D caches,
  /// I/D TLBs, and MMU/PTW counters, plus cycles/instret.
  StatSet merged_stats() const;

  /// Zero every hardware counter merged_stats() reports: core events,
  /// caches, TLBs, MMU/PTW, branch predictor, and the decode-cache stats.
  /// Architectural cycles/instret are untouched (they are machine state,
  /// not telemetry). Checkpoint forks call this so shards count from zero.
  void clear_all_stats();

  /// Convenience for loaders: copy a code image into physical memory.
  void load_code(PhysAddr base, const std::vector<u32>& words);

 private:
  /// Data/fetch path with an optional pre-computed fetch translation. When
  /// `pre` is non-null the caller has already run (and charged) the MMU
  /// translation; the access continues from the PMP check.
  MemAccessResult access_with(VirtAddr va, unsigned size, AccessType type,
                              AccessKind kind, Privilege priv, u64 store_value,
                              const TranslateResult* pre);
  /// Fetch + decode + execute one instruction (the classic interpreter
  /// path). `pre` as in access_with, for the decode-cache fallback.
  StepResult step_fetch_decode(const TranslateResult* pre);
  /// Dispatch one instruction through the decoded-block cache.
  StepResult step_cached();
  /// Decode a straight-line run starting at physical `pa` into the cache.
  /// Returns nullptr if not even one instruction could be cached.
  BBlock* bb_build(PhysAddr pa);
  /// The PMP fetch check exactly as access_with performs it (including the
  /// baseline-core S-bit fixup), without stats or faults.
  bool bb_fetch_pmp_allowed(PhysAddr pa) const;
  StepResult execute(const isa::Inst& in);
  StepResult exec_alu(const isa::Inst& in);
  StepResult exec_mem(const isa::Inst& in);
  StepResult exec_amo(const isa::Inst& in);
  StepResult exec_system(const isa::Inst& in);
  StepResult raise(isa::TrapCause cause, u64 tval);
  /// Evaluate mip/mie/mideleg/mstatus and take the highest-priority
  /// enabled interrupt, if any. Returns true when one was taken.
  bool maybe_take_interrupt();
  void take_interrupt(unsigned code, bool to_supervisor);
  void update_timer_pending();
  void do_sret();
  void do_mret();
  bool csr_accessible(u32 num, Privilege as, bool write) const;
  TranslationContext ctx_for(Privilege priv) const;

  PhysMem& mem_;
  CoreConfig cfg_;
  PmpUnit pmp_;
  Cache icache_;
  Cache dcache_;
  std::optional<Cache> l2_;
  Mmu mmu_;
  BranchPredictor bpred_;

  std::array<u64, 32> regs_{};
  u64 pc_;
  Privilege priv_ = Privilege::kMachine;
  Cycles cycles_ = 0;
  u64 instret_ = 0;

  // CSRs.
  u64 mstatus_ = 0;
  u64 mtvec_ = 0;
  u64 medeleg_ = 0;
  u64 mideleg_ = 0;
  u64 mie_ = 0;
  u64 mip_ = 0;
  unsigned hartid_ = 0;
  u64 mscratch_ = 0;
  u64 mepc_ = 0;
  u64 mcause_ = 0;
  u64 mtval_ = 0;
  u64 stvec_ = 0;
  u64 sscratch_ = 0;
  u64 sepc_ = 0;
  u64 scause_ = 0;
  u64 stval_ = 0;

  u64 mtimecmp_ = ~u64{0};  ///< Timer disarmed at reset.

  // Decoded basic-block cache state (cfg_.decode_cache).
  BlockCache bbcache_;
  BBlock* bb_cur_ = nullptr;       ///< Block the previous step executed from.
  size_t bb_idx_ = 0;              ///< Next entry within bb_cur_.
  bool bb_flush_pending_ = false;  ///< fence.i seen; flush before next fetch.
  u64 bb_table_gen_ = 0;           ///< PhysMem::frame_table_gen() last seen.

  std::optional<PhysAddr> reservation_;  ///< LR/SC reservation.
  STrapHook strap_hook_;
  TraceHook trace_hook_;
  SIntrHook sintr_hook_;

  telemetry::CounterBank bank_;
  telemetry::Counter pmp_faults_;
  telemetry::Counter interrupts_;
  telemetry::Counter traps_;
  telemetry::Counter sd_pt_;
  telemetry::Counter ld_pt_;
  mutable StatSet stats_;
};

}  // namespace ptstore
