// Exporters over the EventRing: Chrome trace_event JSON (open the file in
// chrome://tracing or https://ui.perfetto.dev) and the flat cycle-attribution
// table ptperf prints.
//
// Chrome-trace mapping: ts/dur are microseconds in the viewer; we emit one
// simulated cycle per microsecond (so "1 ms" on screen = 1000 cycles).
// pid = session index (one per simulated machine run_on() built),
// tid = privilege level at emission, cat = subsystem.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/trace.h"

namespace ptstore::telemetry {

void write_chrome_trace(std::ostream& os, const EventRing& ring);
std::string chrome_trace_json(const EventRing& ring);

/// Render the "where do the cycles go" table: self-cycles per subsystem
/// (descending, with percentages) and per privilege, each summing exactly to
/// the total session cycles.
std::string render_profile(const CycleProfile& prof);

}  // namespace ptstore::telemetry
