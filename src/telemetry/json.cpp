#include "telemetry/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace ptstore::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": value — no comma between key and its value.
  }
  if (!container_has_member_.empty()) {
    if (container_has_member_.back()) os_ << ',';
    container_has_member_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  container_has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  container_has_member_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  container_has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  container_has_member_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  os_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  os_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value_i64(i64 v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {
    os_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", d);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  os_ << (b ? "true" : "false");
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // Trailing garbage.
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = JsonValue::Kind::kString; return parse_string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n': out.kind = JsonValue::Kind::kNull; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Validation-grade decoding: BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // Unterminated.
  }

  bool parse_number(JsonValue& out) {
    const size_t start = pos_;
    if (eat('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string num(s_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return false;
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_object(JsonValue& out) {
    if (!eat('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& out) {
    if (!eat('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace ptstore::telemetry
