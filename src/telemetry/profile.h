// Exact (non-sampled) call-stack profiler: a pure observer that maintains a
// shadow call stack per privilege level and accumulates self + inclusive
// cycles per function and per call edge online, in a trie of
// (parent, frame) nodes. Like the EventRing, no call site ever charges
// cycles for it — simulated timing with profiling enabled is bit-identical
// to profiling disabled (asserted by tests/integration/telemetry_test.cpp).
//
// Event sources:
//   - guest call/ret observed at retire in the core (jal/jalr with the RISC-V
//     link-register convention: rd in {ra, t0} is a call, `jalr x0, ra/t0` a
//     return), symbolized against registered symbol tables at snapshot time;
//   - kernel-model spans (ScopedSpan in trace.h pushes/pops a frame when a
//     profiler is active) and explicit ProfScope markers on backend
//     mediation paths (MAC sign/verify, domain flush, token check), so the
//     cost of inlined defense code is attributable by name;
//   - the MMU walker ("ptw", with a "ptw_verify" child sized by the
//     walk-time verifier's charged cycles).
//
// Attribution mirrors EventRing::attribute: each event charges the interval
// [mark, now) to the innermost open frame of the privilege level that was
// current when the interval started, so per-frame self cycles sum exactly
// to the session total. Per-privilege pseudo-roots ("[U]", "[S]", "[M]")
// absorb time with no frame open — their share is the "unknown" bucket the
// differential attribution gate bounds.
//
// The canonical exchange format is the folded-stack map (flamegraph.pl
// compatible): "label;[P];caller;callee" -> {cycles, count}, an ordered map
// so merge (sum by key) is commutative and byte-identical across shard
// orderings — the property the fleet harness's jobs-invariance check pins.
//
// The profiler handle is thread-local: fleet workers profile their own
// shards concurrently without sharing state.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace ptstore::telemetry {

inline constexpr size_t kProfPrivCount = 4;  ///< Privilege encodings 0..3.

// ---- Folded profile: the canonical serialized form ----

struct FoldedEntry {
  u64 cycles = 0;  ///< Self cycles with this exact stack innermost.
  u64 count = 0;   ///< Times this exact stack was entered.
};

struct FoldedProfile {
  /// "label;[P];f1;f2" -> entry. Ordered, so iteration and serialization
  /// are deterministic and merge is order-independent.
  std::map<std::string, FoldedEntry> stacks;
  u64 total_cycles = 0;
  u64 truncated_frames = 0;  ///< Frames dropped at the depth cap.

  bool empty() const { return stacks.empty(); }
  /// Entries whose first frame is `label` (session labels are the
  /// workload-config names the driver brackets runs with).
  FoldedProfile filter_label(std::string_view label) const;
};

/// Pointwise sum: `into += from`. Commutative and associative by key, which
/// makes the 64-shard campaign merge jobs-invariant.
void merge_folded(FoldedProfile& into, const FoldedProfile& from);

/// "stack cycles" lines, flamegraph.pl-compatible, sorted by stack.
void write_folded(std::ostream& os, const FoldedProfile& p);

/// Versioned JSON: {"schema": "ptstore.profile.v1", "total_cycles": N,
/// "truncated_frames": N, "stacks": [{"stack","cycles","count"}...]}.
void write_profile_json(std::ostream& os, const FoldedProfile& p);
std::string profile_json(const FoldedProfile& p);
std::optional<FoldedProfile> parse_profile_json(std::string_view text);

// ---- Derived views ----

struct FunctionRow {
  std::string name;
  u64 self_cycles = 0;
  u64 incl_cycles = 0;  ///< Cycles with this frame anywhere on the stack.
  u64 calls = 0;        ///< Entry count summed over stacks it terminates.
};

/// Per-function aggregation, sorted self-cycles descending then name
/// ascending (fully deterministic under ties).
std::vector<FunctionRow> function_table(const FoldedProfile& p);

struct CallEdge {
  std::string caller;
  std::string callee;
  u64 cycles = 0;  ///< Callee self cycles under this caller.
  u64 count = 0;
};

/// (caller, callee) pairs from adjacent folded frames, sorted cycles
/// descending then caller/callee ascending.
std::vector<CallEdge> call_edges(const FoldedProfile& p);

std::string render_function_table(const FoldedProfile& p, size_t top_n = 0);

// ---- Differential attribution ----

struct DiffRow {
  std::string name;
  u64 self_a = 0;
  u64 self_b = 0;
  i64 delta = 0;  ///< self_b - self_a.
};

struct ProfileDiff {
  /// Union of functions, ranked |delta| descending then name ascending.
  std::vector<DiffRow> rows;
  i64 total_delta = 0;  ///< b.total_cycles - a.total_cycles.
  /// Share of total_delta explained by *named* frames — pseudo-roots
  /// ("[U]"...) and unresolved "guest_0x..." frames count against it.
  /// 100 when total_delta == 0. Clamped to [0, 100].
  double attributed_pct = 100.0;
};

/// True for the frames the attribution gate treats as "unknown": privilege
/// pseudo-roots and unsymbolized guest addresses.
bool is_unattributed_frame(std::string_view name);

ProfileDiff diff_profiles(const FoldedProfile& a, const FoldedProfile& b);

std::string render_diff(const ProfileDiff& d, std::string_view name_a,
                        std::string_view name_b, size_t top_n = 0);

/// Emit the diff into an open JsonWriter-compatible stream as one object
/// (used to embed attribution tables in schema-v1 reports).
void write_diff_json(std::ostream& os, const ProfileDiff& d,
                     std::string_view name_a, std::string_view name_b);

// ---- The online profiler ----

class Profiler {
 public:
  Profiler();

  /// Bracket one simulated machine's run; `label` becomes the first folded
  /// frame (the driver uses its config labels: "base", "cfi", ...).
  /// Re-entering a label accumulates into the same tree. An open session is
  /// closed first.
  void session_begin(std::string_view label, u64 cycles, u8 priv);
  void session_end(u64 cycles);
  bool in_session() const { return in_session_; }

  /// Kernel-model frames. `name` must be a static string.
  void push(const char* name, u64 cycles, u8 priv);
  void pop(u64 cycles, u8 priv);

  /// Guest call/ret observed at retire. `target_pc` is the callee entry,
  /// symbolized at snapshot time against add_symbol() registrations.
  void on_call(u64 target_pc, u64 cycles, u8 priv);
  void on_ret(u64 cycles, u8 priv);

  /// Address-space switch: the U-mode shadow stack belongs to one process,
  /// so the kernel banks the outgoing stack under `mm_id` (pid) and
  /// restores the incoming one (fresh at first sight).
  void on_context_switch(u64 mm_id, u64 cycles, u8 priv);

  /// Register a guest symbol (function entry address -> name).
  void add_symbol(u64 addr, std::string name);

  u64 truncated_frames() const { return truncated_; }

  /// Fold every label tree into the canonical exchange form. Guest frames
  /// resolve to their symbol, or "guest_0x..." when unregistered.
  FoldedProfile snapshot() const;

  void clear();

  static constexpr size_t kMaxDepth = 128;

 private:
  struct Frame {
    std::string name;   ///< Kernel frame name (empty for guest frames).
    u64 guest_addr = 0;
    bool is_guest = false;
  };
  struct Node {
    u32 frame = 0;
    i32 parent = -1;
    u64 self = 0;
    u64 count = 0;
    std::map<u32, u32> children;  ///< frame id -> node index.
  };
  struct Tree {
    std::vector<Node> nodes;
    std::array<u32, kProfPrivCount> roots{};
    u64 total = 0;
  };

  u32 intern(const char* name);
  u32 intern_guest(u64 addr);
  u32 child_node(Tree& t, u32 parent, u32 frame);
  /// Charge [mark_, now) to the innermost frame of cur_priv_, then make
  /// `priv` current.
  void attribute(u64 now, u8 priv);
  std::string frame_name(u32 f) const;

  std::vector<Frame> frames_;
  std::map<std::string, u32, std::less<>> frame_by_name_;
  std::map<u64, u32> frame_by_addr_;
  std::map<u64, std::string> symbols_;

  std::map<std::string, Tree, std::less<>> trees_;

  bool in_session_ = false;
  Tree* cur_ = nullptr;
  u64 session_start_ = 0;
  u64 mark_ = 0;
  u8 cur_priv_ = 3;
  std::array<std::vector<u32>, kProfPrivCount> stack_;
  /// Frames refused at the depth cap per privilege; the matching pop/ret is
  /// swallowed so the stack stays aligned.
  std::array<u64, kProfPrivCount> skipped_{};
  /// Banked U-mode stacks of switched-out address spaces (per session).
  std::map<u64, std::vector<u32>> user_stacks_;
  u64 cur_mm_ = 0;
  u64 truncated_ = 0;
};

// ---- Thread-local profiler session ----
//
// profiling() returns nullptr while disabled (the default); instrumentation
// sites cost one thread-local load + branch. Thread-local (unlike the
// process-wide EventRing) because fleet workers profile concurrent shards.

/// The active profiler on this thread, or nullptr.
Profiler* profiling();

/// Enable profiling on this thread with a fresh profiler; returns it.
Profiler& enable_profiling();

void disable_profiling();

/// RAII kernel-frame marker over any clock-bearing object with
/// cycles()/priv() (Core and Kernel-adjacent components). No-op while
/// profiling is disabled. Used to annotate backend mediation paths that
/// would otherwise be invisible inside their enclosing handler's span.
template <typename ClockT>
class ProfScope {
 public:
  ProfScope(ClockT& clock, const char* name)
      : clock_(clock), prof_(profiling()), name_(name) {
    if (prof_ != nullptr) {
      prof_->push(name_, clock_.cycles(), static_cast<u8>(clock_.priv()));
    }
  }
  ~ProfScope() {
    if (prof_ != nullptr) {
      prof_->pop(clock_.cycles(), static_cast<u8>(clock_.priv()));
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ClockT& clock_;
  Profiler* prof_;
  const char* name_;
};

}  // namespace ptstore::telemetry
