#include "telemetry/profile.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <sstream>

#include "telemetry/json.h"

namespace ptstore::telemetry {

namespace {

const char* root_frame_name(size_t priv) {
  switch (priv) {
    case 0: return "[U]";
    case 1: return "[S]";
    case 3: return "[M]";
  }
  return "[?]";
}

/// Frame names become folded-stack tokens: the separators (';' for frames,
/// ' ' for the cycle column) must not appear inside one.
std::string sanitize_frame(std::string s) {
  for (char& c : s) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  return s;
}

std::vector<std::string_view> split_stack(std::string_view key) {
  std::vector<std::string_view> out;
  size_t pos = 0;
  while (pos <= key.size()) {
    const size_t semi = key.find(';', pos);
    if (semi == std::string_view::npos) {
      out.push_back(key.substr(pos));
      break;
    }
    out.push_back(key.substr(pos, semi - pos));
    pos = semi + 1;
  }
  return out;
}

}  // namespace

// ---- FoldedProfile ----

FoldedProfile FoldedProfile::filter_label(std::string_view label) const {
  FoldedProfile out;
  out.truncated_frames = truncated_frames;
  std::string prefix(label);
  prefix += ';';
  for (const auto& [key, entry] : stacks) {
    if (key.size() > prefix.size() && key.compare(0, prefix.size(), prefix) == 0) {
      out.stacks.emplace(key, entry);
      out.total_cycles += entry.cycles;
    }
  }
  return out;
}

void merge_folded(FoldedProfile& into, const FoldedProfile& from) {
  for (const auto& [key, entry] : from.stacks) {
    FoldedEntry& e = into.stacks[key];
    e.cycles += entry.cycles;
    e.count += entry.count;
  }
  into.total_cycles += from.total_cycles;
  into.truncated_frames += from.truncated_frames;
}

void write_folded(std::ostream& os, const FoldedProfile& p) {
  for (const auto& [key, entry] : p.stacks) {
    os << key << ' ' << entry.cycles << '\n';
  }
}

void write_profile_json(std::ostream& os, const FoldedProfile& p) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "ptstore.profile.v1");
  w.kv("total_cycles", p.total_cycles);
  w.kv("truncated_frames", p.truncated_frames);
  w.key("stacks").begin_array();
  for (const auto& [key, entry] : p.stacks) {
    w.begin_object();
    w.kv("stack", key);
    w.kv("cycles", entry.cycles);
    w.kv("count", entry.count);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string profile_json(const FoldedProfile& p) {
  std::ostringstream os;
  write_profile_json(os, p);
  return os.str();
}

std::optional<FoldedProfile> parse_profile_json(std::string_view text) {
  const std::optional<JsonValue> doc = json_parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->str != "ptstore.profile.v1") {
    return std::nullopt;
  }
  FoldedProfile p;
  if (const JsonValue* v = doc->find("total_cycles")) {
    p.total_cycles = static_cast<u64>(v->number);
  }
  if (const JsonValue* v = doc->find("truncated_frames")) {
    p.truncated_frames = static_cast<u64>(v->number);
  }
  const JsonValue* stacks = doc->find("stacks");
  if (stacks == nullptr || !stacks->is_array()) return std::nullopt;
  for (const JsonValue& item : stacks->arr) {
    const JsonValue* stack = item.find("stack");
    const JsonValue* cycles = item.find("cycles");
    if (stack == nullptr || stack->kind != JsonValue::Kind::kString ||
        cycles == nullptr) {
      return std::nullopt;
    }
    FoldedEntry& e = p.stacks[stack->str];
    e.cycles += static_cast<u64>(cycles->number);
    if (const JsonValue* count = item.find("count")) {
      e.count += static_cast<u64>(count->number);
    }
  }
  return p;
}

// ---- Derived views ----

std::vector<FunctionRow> function_table(const FoldedProfile& p) {
  std::map<std::string, FunctionRow, std::less<>> by_name;
  for (const auto& [key, entry] : p.stacks) {
    const std::vector<std::string_view> frames = split_stack(key);
    if (frames.empty()) continue;
    const std::string_view leaf = frames.back();
    FunctionRow& row = by_name[std::string(leaf)];
    row.self_cycles += entry.cycles;
    row.calls += entry.count;
    // Inclusive: charge each *distinct* frame on the stack once, so
    // recursion does not double-count.
    std::set<std::string_view> seen(frames.begin(), frames.end());
    for (const std::string_view f : seen) {
      by_name[std::string(f)].incl_cycles += entry.cycles;
    }
  }
  std::vector<FunctionRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) {
    row.name = name;
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const FunctionRow& a, const FunctionRow& b) {
                     if (a.self_cycles != b.self_cycles) {
                       return a.self_cycles > b.self_cycles;
                     }
                     return a.name < b.name;
                   });
  return rows;
}

std::vector<CallEdge> call_edges(const FoldedProfile& p) {
  std::map<std::pair<std::string, std::string>, CallEdge> by_pair;
  for (const auto& [key, entry] : p.stacks) {
    const std::vector<std::string_view> frames = split_stack(key);
    if (frames.size() < 2) continue;
    const std::string_view caller = frames[frames.size() - 2];
    const std::string_view callee = frames.back();
    CallEdge& e = by_pair[{std::string(caller), std::string(callee)}];
    e.cycles += entry.cycles;
    e.count += entry.count;
  }
  std::vector<CallEdge> edges;
  edges.reserve(by_pair.size());
  for (auto& [pair, e] : by_pair) {
    e.caller = pair.first;
    e.callee = pair.second;
    edges.push_back(std::move(e));
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const CallEdge& a, const CallEdge& b) {
                     if (a.cycles != b.cycles) return a.cycles > b.cycles;
                     if (a.caller != b.caller) return a.caller < b.caller;
                     return a.callee < b.callee;
                   });
  return edges;
}

std::string render_function_table(const FoldedProfile& p, size_t top_n) {
  std::vector<FunctionRow> rows = function_table(p);
  if (top_n != 0 && rows.size() > top_n) rows.resize(top_n);
  std::ostringstream os;
  char line[160];
  const double total =
      p.total_cycles == 0 ? 1.0 : static_cast<double>(p.total_cycles);
  std::snprintf(line, sizeof line, "  %-32s %14s %14s %10s %7s\n", "function",
                "self", "incl", "calls", "self%");
  os << line;
  for (const FunctionRow& r : rows) {
    std::snprintf(line, sizeof line, "  %-32s %14llu %14llu %10llu %6.2f%%\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.self_cycles),
                  static_cast<unsigned long long>(r.incl_cycles),
                  static_cast<unsigned long long>(r.calls),
                  100.0 * static_cast<double>(r.self_cycles) / total);
    os << line;
  }
  std::snprintf(line, sizeof line, "  total: %llu cycles, %zu functions\n",
                static_cast<unsigned long long>(p.total_cycles), rows.size());
  os << line;
  return os.str();
}

// ---- Differential attribution ----

bool is_unattributed_frame(std::string_view name) {
  if (!name.empty() && name.front() == '[') return true;
  return name.rfind("guest_0x", 0) == 0;
}

ProfileDiff diff_profiles(const FoldedProfile& a, const FoldedProfile& b) {
  std::map<std::string, DiffRow, std::less<>> by_name;
  for (const FunctionRow& r : function_table(a)) {
    by_name[r.name].self_a = r.self_cycles;
  }
  for (const FunctionRow& r : function_table(b)) {
    by_name[r.name].self_b = r.self_cycles;
  }

  ProfileDiff d;
  d.total_delta =
      static_cast<i64>(b.total_cycles) - static_cast<i64>(a.total_cycles);
  i64 unattributed_delta = 0;
  for (auto& [name, row] : by_name) {
    row.name = name;
    row.delta = static_cast<i64>(row.self_b) - static_cast<i64>(row.self_a);
    if (is_unattributed_frame(name)) unattributed_delta += row.delta;
    d.rows.push_back(row);
  }
  std::stable_sort(d.rows.begin(), d.rows.end(),
                   [](const DiffRow& x, const DiffRow& y) {
                     const i64 ax = x.delta < 0 ? -x.delta : x.delta;
                     const i64 ay = y.delta < 0 ? -y.delta : y.delta;
                     if (ax != ay) return ax > ay;
                     return x.name < y.name;
                   });

  if (d.total_delta == 0) {
    d.attributed_pct = unattributed_delta == 0 ? 100.0 : 0.0;
  } else {
    const double pct = 100.0 *
                       static_cast<double>(d.total_delta - unattributed_delta) /
                       static_cast<double>(d.total_delta);
    d.attributed_pct = std::clamp(pct, 0.0, 100.0);
  }
  return d;
}

std::string render_diff(const ProfileDiff& d, std::string_view name_a,
                        std::string_view name_b, size_t top_n) {
  std::ostringstream os;
  char line[192];
  std::snprintf(line, sizeof line,
                "overhead attribution: %.*s -> %.*s (total delta %+lld cycles, "
                "%.1f%% attributed to named functions)\n",
                static_cast<int>(name_a.size()), name_a.data(),
                static_cast<int>(name_b.size()), name_b.data(),
                static_cast<long long>(d.total_delta), d.attributed_pct);
  os << line;
  std::snprintf(line, sizeof line, "  %-32s %14s %14s %14s\n", "function",
                std::string(name_a).c_str(), std::string(name_b).c_str(),
                "delta");
  os << line;
  size_t shown = 0;
  for (const DiffRow& r : d.rows) {
    if (r.delta == 0) continue;
    if (top_n != 0 && shown >= top_n) break;
    std::snprintf(line, sizeof line, "  %-32s %14llu %14llu %+14lld\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.self_a),
                  static_cast<unsigned long long>(r.self_b),
                  static_cast<long long>(r.delta));
    os << line;
    ++shown;
  }
  if (shown == 0) os << "  (no per-function deltas)\n";
  return os.str();
}

void write_diff_json(std::ostream& os, const ProfileDiff& d,
                     std::string_view name_a, std::string_view name_b) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "ptstore.profile_diff.v1");
  w.kv("profile_a", name_a);
  w.kv("profile_b", name_b);
  w.key("total_delta_cycles").value_i64(d.total_delta);
  w.kv("attributed_pct", d.attributed_pct);
  w.key("rows").begin_array();
  for (const DiffRow& r : d.rows) {
    if (r.delta == 0) continue;
    w.begin_object();
    w.kv("function", r.name);
    w.kv("self_a", r.self_a);
    w.kv("self_b", r.self_b);
    w.key("delta").value_i64(r.delta);
    w.kv("unattributed", is_unattributed_frame(r.name));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

// ---- Profiler ----

Profiler::Profiler() { frames_.reserve(64); }

u32 Profiler::intern(const char* name) {
  const auto it = frame_by_name_.find(std::string_view(name));
  if (it != frame_by_name_.end()) return it->second;
  const u32 id = static_cast<u32>(frames_.size());
  frames_.push_back(Frame{name, 0, false});
  frame_by_name_.emplace(name, id);
  return id;
}

u32 Profiler::intern_guest(u64 addr) {
  const auto it = frame_by_addr_.find(addr);
  if (it != frame_by_addr_.end()) return it->second;
  const u32 id = static_cast<u32>(frames_.size());
  frames_.push_back(Frame{{}, addr, true});
  frame_by_addr_.emplace(addr, id);
  return id;
}

u32 Profiler::child_node(Tree& t, u32 parent, u32 frame) {
  Node& p = t.nodes[parent];
  const auto it = p.children.find(frame);
  if (it != p.children.end()) return it->second;
  const u32 idx = static_cast<u32>(t.nodes.size());
  t.nodes[parent].children.emplace(frame, idx);
  Node n;
  n.frame = frame;
  n.parent = static_cast<i32>(parent);
  t.nodes.push_back(std::move(n));
  return idx;
}

void Profiler::attribute(u64 now, u8 priv) {
  if (now > mark_) {
    cur_->nodes[stack_[cur_priv_].back()].self += now - mark_;
    mark_ = now;
  }
  cur_priv_ = static_cast<u8>(priv & 3);
}

void Profiler::session_begin(std::string_view label, u64 cycles, u8 priv) {
  if (in_session_) session_end(cycles);
  Tree& t = trees_[std::string(label)];
  if (t.nodes.empty()) {
    for (size_t p = 0; p < kProfPrivCount; ++p) {
      Node root;
      root.frame = intern(root_frame_name(p));
      t.roots[p] = static_cast<u32>(t.nodes.size());
      t.nodes.push_back(std::move(root));
    }
  }
  cur_ = &t;
  for (size_t p = 0; p < kProfPrivCount; ++p) {
    stack_[p].clear();
    stack_[p].push_back(t.roots[p]);
    skipped_[p] = 0;
  }
  in_session_ = true;
  session_start_ = cycles;
  mark_ = cycles;
  cur_priv_ = static_cast<u8>(priv & 3);
  user_stacks_.clear();
  cur_mm_ = 0;
  t.nodes[t.roots[cur_priv_]].count += 1;
}

void Profiler::session_end(u64 cycles) {
  if (!in_session_) return;
  attribute(cycles, cur_priv_);
  cur_->total += cycles - session_start_;
  in_session_ = false;
  cur_ = nullptr;
  for (auto& s : stack_) s.clear();
}

void Profiler::push(const char* name, u64 cycles, u8 priv) {
  if (!in_session_) return;
  attribute(cycles, priv);
  const u8 p = static_cast<u8>(priv & 3);
  if (stack_[p].size() >= kMaxDepth) {
    skipped_[p] += 1;
    truncated_ += 1;
    return;
  }
  const u32 node = child_node(*cur_, stack_[p].back(), intern(name));
  stack_[p].push_back(node);
  cur_->nodes[node].count += 1;
}

void Profiler::pop(u64 cycles, u8 priv) {
  if (!in_session_) return;
  attribute(cycles, priv);
  const u8 p = static_cast<u8>(priv & 3);
  if (skipped_[p] > 0) {
    skipped_[p] -= 1;
    return;
  }
  if (stack_[p].size() > 1) stack_[p].pop_back();
}

void Profiler::on_call(u64 target_pc, u64 cycles, u8 priv) {
  if (!in_session_) return;
  attribute(cycles, priv);
  const u8 p = static_cast<u8>(priv & 3);
  if (stack_[p].size() >= kMaxDepth) {
    skipped_[p] += 1;
    truncated_ += 1;
    return;
  }
  const u32 node = child_node(*cur_, stack_[p].back(), intern_guest(target_pc));
  stack_[p].push_back(node);
  cur_->nodes[node].count += 1;
}

void Profiler::on_ret(u64 cycles, u8 priv) { pop(cycles, priv); }

void Profiler::on_context_switch(u64 mm_id, u64 cycles, u8 priv) {
  if (!in_session_ || mm_id == cur_mm_) return;
  attribute(cycles, priv);
  user_stacks_[cur_mm_] = std::move(stack_[0]);
  const auto it = user_stacks_.find(mm_id);
  if (it != user_stacks_.end() && !it->second.empty()) {
    stack_[0] = std::move(it->second);
    user_stacks_.erase(it);
  } else {
    stack_[0].clear();
    stack_[0].push_back(cur_->roots[0]);
  }
  skipped_[0] = 0;
  cur_mm_ = mm_id;
}

void Profiler::add_symbol(u64 addr, std::string name) {
  symbols_[addr] = std::move(name);
}

std::string Profiler::frame_name(u32 f) const {
  const Frame& fr = frames_[f];
  if (!fr.is_guest) return sanitize_frame(fr.name);
  const auto it = symbols_.find(fr.guest_addr);
  if (it != symbols_.end()) return sanitize_frame(it->second);
  char buf[32];
  std::snprintf(buf, sizeof buf, "guest_0x%llx",
                static_cast<unsigned long long>(fr.guest_addr));
  return buf;
}

FoldedProfile Profiler::snapshot() const {
  FoldedProfile out;
  out.truncated_frames = truncated_;
  for (const auto& [label, tree] : trees_) {
    out.total_cycles += tree.total;
    // Iterative DFS per privilege root, building the folded key as we go.
    struct Visit {
      u32 node;
      std::string path;
    };
    for (size_t p = 0; p < kProfPrivCount; ++p) {
      std::vector<Visit> work;
      work.push_back(
          Visit{tree.roots[p],
                sanitize_frame(label) + ";" +
                    frame_name(tree.nodes[tree.roots[p]].frame)});
      while (!work.empty()) {
        Visit v = std::move(work.back());
        work.pop_back();
        const Node& n = tree.nodes[v.node];
        if (n.self != 0 || n.count != 0) {
          FoldedEntry& e = out.stacks[v.path];
          e.cycles += n.self;
          e.count += n.count;
        }
        for (const auto& [frame, child] : n.children) {
          work.push_back(Visit{child, v.path + ";" + frame_name(frame)});
        }
      }
    }
  }
  return out;
}

void Profiler::clear() {
  trees_.clear();
  frames_.clear();
  frame_by_name_.clear();
  frame_by_addr_.clear();
  in_session_ = false;
  cur_ = nullptr;
  for (auto& s : stack_) s.clear();
  skipped_ = {};
  user_stacks_.clear();
  cur_mm_ = 0;
  truncated_ = 0;
  mark_ = 0;
  cur_priv_ = 3;
}

// ---- Thread-local session ----

namespace {
thread_local std::unique_ptr<Profiler> g_profiler;
}  // namespace

Profiler* profiling() { return g_profiler.get(); }

Profiler& enable_profiling() {
  g_profiler = std::make_unique<Profiler>();
  return *g_profiler;
}

void disable_profiling() { g_profiler.reset(); }

}  // namespace ptstore::telemetry
