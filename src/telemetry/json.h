// Dependency-free JSON support for the telemetry layer: a streaming writer
// (commas/escaping handled centrally so exporters cannot emit malformed
// documents) and a small recursive-descent parser used by ptperf and the
// tests to validate what the exporters produced. Numbers parse as double —
// exact for every counter below 2^53, which is all the schema checks need.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace ptstore::telemetry {

std::string json_escape(std::string_view s);

/// Streaming JSON writer. Call sequence is the document structure; the
/// writer inserts commas and quotes keys/strings.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next member (objects only).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(u64 v);
  JsonWriter& value_i64(i64 v);
  JsonWriter& value(int v) { return value(static_cast<u64>(v < 0 ? 0 : v)); }
  JsonWriter& value(double d);
  JsonWriter& value(bool b);

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void separate();

  std::ostream& os_;
  std::vector<bool> container_has_member_;
  bool pending_key_ = false;
};

/// Parsed JSON value (validating parser; see json_parse).
struct JsonValue {
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  // Insertion order.

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document; nullopt on any syntax error or trailing
/// garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace ptstore::telemetry
