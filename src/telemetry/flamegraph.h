// Self-contained SVG flamegraph renderer over a FoldedProfile — no
// JavaScript, no external tooling: every <rect> carries a <title> tooltip
// with the full stack, cycle count, and percentage, so the file is useful
// in any browser or image viewer. Frame colors are a deterministic hash of
// the frame name (same function -> same color across graphs and runs, and
// the SVG bytes are a pure function of the profile — diffable in CI).
//
// The folded text form (write_folded) stays flamegraph.pl-compatible for
// anyone who prefers the classic toolchain.
#pragma once

#include <ostream>
#include <string>

#include "telemetry/profile.h"

namespace ptstore::telemetry {

struct FlamegraphOptions {
  std::string title = "ptstore flamegraph";
  u32 width_px = 1200;
  u32 frame_height_px = 16;
  /// Frames narrower than this many pixels are still emitted (1px minimum)
  /// so the graph always accounts for 100% of the cycles.
  double min_width_px = 0.1;
};

void write_flamegraph_svg(std::ostream& os, const FoldedProfile& profile,
                          const FlamegraphOptions& opts = {});
std::string flamegraph_svg(const FoldedProfile& profile,
                           const FlamegraphOptions& opts = {});

}  // namespace ptstore::telemetry
