// Machine-readable bench reports. The workload driver converts its run into
// a BenchReport and this writer emits the versioned JSON schema every
// BENCH_*.json consumer parses:
//
//   {
//     "schema_version": 1,
//     "workload": "spec",
//     "config": { "<key>": "<value>", ... },
//     "measurements": [
//       { "name": "...", "base_cycles": N, "cfi_cycles": N,
//         "cfi_ptstore_cycles": N, "cfi_ptstore_noadj_cycles": N,
//         "cfi_pct": F, "cfi_ptstore_pct": F, "ptstore_only_pct": F }, ...
//     ],
//     "counters": {
//       "<name>": { "value": N, "unit": "...", "description": "..." }, ...
//     },
//     "histograms": {
//       "<name>": { "count": N, "mean": F, "min": N, "max": N,
//                   "p50": N, "p90": N, "p99": N }, ...
//     }
//   }
//
// The telemetry layer stays dependency-free: the driver flattens its
// Measurement/Histogram types into the plain structs below.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace ptstore::telemetry {

inline constexpr u64 kBenchReportSchemaVersion = 1;

struct HistogramSummary {
  u64 count = 0;
  double mean = 0;
  u64 min = 0;
  u64 max = 0;
  u64 p50 = 0;
  u64 p90 = 0;
  u64 p99 = 0;
};

struct BenchReport {
  std::string workload;
  /// Ordered key/value pairs describing the run (scale, knobs, ...).
  std::vector<std::pair<std::string, std::string>> config;

  struct Row {
    std::string name;
    u64 base_cycles = 0;
    u64 cfi_cycles = 0;
    u64 cfi_ptstore_cycles = 0;
    u64 cfi_ptstore_noadj_cycles = 0;  ///< 0 when the -Adj config did not run.
    double cfi_pct = 0;
    double cfi_ptstore_pct = 0;
    double ptstore_only_pct = 0;
  };
  std::vector<Row> measurements;

  /// Counter name -> value; metadata is looked up in the MetricsRegistry.
  std::map<std::string, u64> counters;
  std::map<std::string, HistogramSummary> histograms;
};

void write_bench_report(std::ostream& os, const BenchReport& report);
std::string bench_report_json(const BenchReport& report);

/// The report's counters ranked value-descending, name-ascending under ties
/// — a total order, so top-N listings are identical across runs even when
/// counters tie. `top_n == 0` keeps every row.
std::vector<std::pair<std::string, u64>> top_counters(const BenchReport& report,
                                                      size_t top_n);

}  // namespace ptstore::telemetry
