// Structured event tracing: a bounded ring of typed spans and instants,
// each stamped with *simulated* cycles and instret. Tracing is a pure
// observer — no call site ever charges cycles for it, so simulated timing
// with tracing enabled is bit-identical to tracing disabled (asserted by
// tests/integration/telemetry_test.cpp).
//
// The ring also keeps an online cycle-attribution profile: self-cycles by
// subsystem (span duration minus nested-span durations) and by privilege,
// which by construction sum exactly to the total session cycles — the
// "where do the cycles go" table ptperf renders.
//
// Each System's core starts counting cycles at 0, and one bench run builds
// several systems (the four paper configurations), so the workload driver
// brackets every run_on() in a session: session boundaries reset the
// timestamp origin and scope attribution to one machine.
#pragma once

#include <array>
#include <deque>
#include <vector>

#include "common/types.h"
#include "telemetry/profile.h"

namespace ptstore::telemetry {

enum class Subsystem : u8 {
  kTrap = 0,      ///< Trap/interrupt entry-exit and page-fault handling.
  kSyscall,       ///< Kernel syscall layer (by Sys).
  kSwitchMm,      ///< Context switch: switch_mm + satp write.
  kToken,         ///< PTStore token validation.
  kPtw,           ///< Hardware page-table walks.
  kPtInsn,        ///< ld.pt/sd.pt secure-region accesses.
  kSecureRegion,  ///< Secure-region growth (adjustment).
  kBBCache,       ///< Decoded-block cache fills/evictions (host-side).
  kOther,         ///< Everything outside an instrumented span.
};
inline constexpr size_t kSubsystemCount = 9;
inline constexpr size_t kPrivilegeCount = 4;  ///< Privilege encodings 0..3.

const char* to_string(Subsystem s);

enum class EventPhase : u8 {
  kBegin,    ///< Span opens.
  kEnd,      ///< Span closes (LIFO within a session).
  kInstant,  ///< Point event.
};

struct TraceEvent {
  u64 cycles = 0;
  u64 instret = 0;
  const char* name = "";  ///< Static string supplied by the emitter.
  u64 arg = 0;            ///< Event-specific payload (Sys, VA, pid, ...).
  u32 session = 0;
  Subsystem sub = Subsystem::kOther;
  EventPhase phase = EventPhase::kInstant;
  u8 priv = 3;  ///< Privilege at emission (Privilege encoding; 3 = M).
};

/// Flat cycle-attribution profile. self_cycles[s] is the time spent with
/// subsystem `s` as the innermost open span; both breakdowns sum to
/// total_cycles by construction.
struct CycleProfile {
  std::array<u64, kSubsystemCount> self_cycles{};
  std::array<u64, kPrivilegeCount> priv_cycles{};
  u64 total_cycles = 0;

  u64 attributed() const {
    u64 sum = 0;
    for (const u64 c : self_cycles) sum += c;
    return sum;
  }
};

class EventRing {
 public:
  explicit EventRing(size_t capacity = size_t{1} << 16) : capacity_(capacity) {}

  /// Bracket one simulated machine's run. Events emitted outside a session
  /// are recorded but not attributed (their cycle origin is unknown).
  void session_begin(u64 cycles);
  void session_end(u64 cycles);

  void begin(Subsystem sub, const char* name, u64 cycles, u64 instret, u8 priv,
             u64 arg = 0);
  void end(Subsystem sub, const char* name, u64 cycles, u64 instret, u8 priv,
           u64 arg = 0);
  void instant(Subsystem sub, const char* name, u64 cycles, u64 instret, u8 priv,
               u64 arg = 0);

  /// Retained window (oldest events are dropped first once full).
  const std::deque<TraceEvent>& events() const { return events_; }
  u64 total_emitted() const { return total_; }
  u64 dropped() const { return dropped_; }
  u32 sessions() const { return session_; }
  size_t capacity() const { return capacity_; }

  /// Attribution over every *closed* session so far. Exact regardless of
  /// ring drops: the profile is accumulated online, not replayed.
  const CycleProfile& profile() const { return profile_; }

  void clear();

 private:
  void push(const TraceEvent& ev);
  /// Charge [mark_, now) to the innermost open span (or kOther) and to the
  /// current privilege, then advance the mark.
  void attribute(u64 now);

  size_t capacity_;
  std::deque<TraceEvent> events_;
  u64 total_ = 0;
  u64 dropped_ = 0;

  u32 session_ = 0;
  bool in_session_ = false;
  u64 session_start_ = 0;
  u64 mark_ = 0;
  u8 cur_priv_ = 3;
  std::vector<Subsystem> stack_;
  CycleProfile profile_;
};

// ---- Global trace session ----
//
// tracing() returns nullptr while disabled (the default), so instrumentation
// sites cost one load + branch. The instrumented hot paths all follow:
//
//   if (telemetry::EventRing* tr = telemetry::tracing()) {
//     tr->instant(Subsystem::kPtInsn, "sd.pt", cycles, instret, priv, va);
//   }

/// The active ring, or nullptr when tracing is disabled.
EventRing* tracing();

/// Enable tracing with a fresh ring of `capacity` events; returns it.
EventRing& enable_tracing(size_t capacity = size_t{1} << 16);

void disable_tracing();

/// RAII span over any clock-bearing object with cycles()/instret()/priv()
/// (Core and Kernel-adjacent components). No-op while tracing is disabled.
/// When a call-stack profiler is active on this thread (profile.h), the
/// span doubles as a profile frame, so every instrumented kernel path shows
/// up in flamegraphs without separate markers.
template <typename ClockT>
class ScopedSpan {
 public:
  ScopedSpan(ClockT& clock, Subsystem sub, const char* name, u64 arg = 0)
      : clock_(clock), ring_(tracing()), prof_(profiling()), sub_(sub),
        name_(name) {
    if (ring_ != nullptr) {
      ring_->begin(sub_, name_, clock_.cycles(), clock_.instret(),
                   static_cast<u8>(clock_.priv()), arg);
    }
    if (prof_ != nullptr) {
      prof_->push(name_, clock_.cycles(), static_cast<u8>(clock_.priv()));
    }
  }
  ~ScopedSpan() {
    if (ring_ != nullptr) {
      ring_->end(sub_, name_, clock_.cycles(), clock_.instret(),
                 static_cast<u8>(clock_.priv()));
    }
    if (prof_ != nullptr) {
      prof_->pop(clock_.cycles(), static_cast<u8>(clock_.priv()));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ClockT& clock_;
  EventRing* ring_;
  Profiler* prof_;
  Subsystem sub_;
  const char* name_;
};

}  // namespace ptstore::telemetry
