// Interned performance counters. Components register each counter once at
// construction against the process-wide MetricsRegistry (which owns the
// name/description/unit metadata) and receive a Counter handle whose hot
// path is a single pointer-indirected increment — no string hashing, no
// map lookup. StatSet (common/stats.h) remains the merge/snapshot view:
// CounterBank::snapshot_into() materializes the nonzero counters by name so
// every existing stats() consumer keeps working unchanged.
//
//   class Mmu {
//     telemetry::CounterBank bank_;
//     telemetry::Counter walks_ = bank_.counter("mmu.walks", "page-table walks");
//     ...
//     void walk() { walks_.add(); }                       // hot path
//     const StatSet& stats() const {                      // snapshot view
//       bank_.snapshot_into(stats_);
//       return stats_;
//     }
//   };
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ptstore::telemetry {

using CounterId = u32;
inline constexpr CounterId kInvalidCounterId = ~CounterId{0};

/// Reporting metadata for one interned counter name.
struct CounterMeta {
  std::string name;
  std::string description;
  std::string unit;  ///< "events" unless registered otherwise.
};

/// Process-wide catalog of counter names. Holds metadata only — values live
/// in per-component CounterBanks, so two simulated machines in one process
/// (e.g. the four configurations of measure()) never share cells. All
/// members are mutex-guarded: the fleet runner (src/harness/fleet.h)
/// constructs Systems — and therefore interns counters — on worker threads.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Intern `name`, returning its stable id. Re-interning an existing name
  /// returns the same id; the first non-empty description/unit win.
  CounterId intern(std::string_view name, std::string_view description = {},
                   std::string_view unit = {});

  CounterMeta meta(CounterId id) const;
  std::optional<CounterId> find(std::string_view name) const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<CounterMeta> metas_;
  std::map<std::string, CounterId, std::less<>> by_name_;
};

/// Sum per-shard counter snapshots into one StatSet, in shard order. The
/// result is independent of how shards were scheduled across workers —
/// StatSet is name-keyed and addition commutes — which is what makes
/// cross-shard campaign reports byte-identical for any --jobs value.
StatSet merge_shard_stats(const std::vector<StatSet>& shards);

namespace detail {
/// Target of default-constructed Counter handles, so an unbound handle is
/// inert instead of undefined behaviour.
inline u64 g_counter_sink = 0;
}  // namespace detail

/// Cheap handle to one counter cell. Copyable; add() is the hot path.
class Counter {
 public:
  Counter() = default;

  void add(u64 delta = 1) { *cell_ += delta; }
  void set(u64 v) { *cell_ = v; }
  u64 value() const { return *cell_; }
  CounterId id() const { return id_; }

 private:
  friend class CounterBank;
  Counter(u64* cell, CounterId id) : cell_(cell), id_(id) {}

  u64* cell_ = &detail::g_counter_sink;
  CounterId id_ = kInvalidCounterId;
};

/// Value storage for one component's counters. Cell addresses are stable
/// for the bank's lifetime (deque), so Counter handles never dangle while
/// their component lives.
class CounterBank {
 public:
  /// Register a counter in this bank (interning its metadata globally) and
  /// return the handle. Call once per counter at component construction.
  Counter counter(std::string_view name, std::string_view description = {},
                  std::string_view unit = {});

  /// Write every nonzero counter into `out` by name (set(), so repeated
  /// snapshots into the same StatSet stay current). Zero-valued counters are
  /// skipped, matching the historical "a key exists iff it was bumped"
  /// StatSet behaviour that tests rely on.
  void snapshot_into(StatSet& out) const;
  StatSet snapshot() const;

  /// Value by full name; 0 when the bank has no such counter.
  u64 value_of(std::string_view name) const;

  /// Zero every cell (snapshot views refresh on next read).
  void clear();

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    CounterId id;
    u64* cell;
  };

  std::deque<u64> cells_;  // Stable addresses.
  std::vector<Entry> entries_;
};

}  // namespace ptstore::telemetry
