#include "telemetry/trace.h"

#include <memory>

namespace ptstore::telemetry {

const char* to_string(Subsystem s) {
  switch (s) {
    case Subsystem::kTrap: return "trap";
    case Subsystem::kSyscall: return "syscall";
    case Subsystem::kSwitchMm: return "switch_mm";
    case Subsystem::kToken: return "token";
    case Subsystem::kPtw: return "ptw";
    case Subsystem::kPtInsn: return "pt_insn";
    case Subsystem::kSecureRegion: return "secure_region";
    case Subsystem::kBBCache: return "bbcache";
    case Subsystem::kOther: return "other";
  }
  return "?";
}

void EventRing::session_begin(u64 cycles) {
  ++session_;
  in_session_ = true;
  session_start_ = cycles;
  mark_ = cycles;
  cur_priv_ = 3;
  stack_.clear();
}

void EventRing::session_end(u64 cycles) {
  if (!in_session_) return;
  attribute(cycles);
  profile_.total_cycles += cycles - session_start_;
  in_session_ = false;
  stack_.clear();
}

void EventRing::attribute(u64 now) {
  if (!in_session_) return;
  // Timestamps within a session come from one core and are monotone; guard
  // anyway so a misbehaving emitter cannot underflow the profile.
  const u64 delta = now >= mark_ ? now - mark_ : 0;
  const Subsystem sub = stack_.empty() ? Subsystem::kOther : stack_.back();
  profile_.self_cycles[static_cast<size_t>(sub)] += delta;
  profile_.priv_cycles[cur_priv_ & 3] += delta;
  mark_ = now;
}

void EventRing::push(const TraceEvent& ev) {
  ++total_;
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(ev);
}

void EventRing::begin(Subsystem sub, const char* name, u64 cycles, u64 instret,
                      u8 priv, u64 arg) {
  attribute(cycles);
  cur_priv_ = priv;
  if (in_session_) stack_.push_back(sub);
  push(TraceEvent{cycles, instret, name, arg, session_, sub, EventPhase::kBegin,
                  priv});
}

void EventRing::end(Subsystem sub, const char* name, u64 cycles, u64 instret,
                    u8 priv, u64 arg) {
  attribute(cycles);
  cur_priv_ = priv;
  if (in_session_ && !stack_.empty()) stack_.pop_back();
  push(TraceEvent{cycles, instret, name, arg, session_, sub, EventPhase::kEnd,
                  priv});
}

void EventRing::instant(Subsystem sub, const char* name, u64 cycles, u64 instret,
                        u8 priv, u64 arg) {
  attribute(cycles);
  cur_priv_ = priv;
  push(TraceEvent{cycles, instret, name, arg, session_, sub, EventPhase::kInstant,
                  priv});
}

void EventRing::clear() {
  events_.clear();
  total_ = dropped_ = 0;
  session_ = 0;
  in_session_ = false;
  stack_.clear();
  profile_ = CycleProfile{};
}

namespace {
std::unique_ptr<EventRing> g_ring;
}  // namespace

EventRing* tracing() { return g_ring.get(); }

EventRing& enable_tracing(size_t capacity) {
  g_ring = std::make_unique<EventRing>(capacity);
  return *g_ring;
}

void disable_tracing() { g_ring.reset(); }

}  // namespace ptstore::telemetry
