#include "telemetry/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "telemetry/json.h"

namespace ptstore::telemetry {

namespace {

const char* priv_name(u8 priv) {
  switch (priv) {
    case 0: return "U";
    case 1: return "S";
    case 3: return "M";
  }
  return "?";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const EventRing& ring) {
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").begin_object();
  w.kv("tool", "ptstore");
  w.kv("clock", "simulated cycles (1 cycle = 1us in the viewer)");
  w.kv("events_emitted", ring.total_emitted());
  w.kv("events_dropped", ring.dropped());
  w.end_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& ev : ring.events()) {
    w.begin_object();
    w.kv("name", ev.name);
    w.kv("cat", to_string(ev.sub));
    const char* ph = ev.phase == EventPhase::kBegin  ? "B"
                     : ev.phase == EventPhase::kEnd  ? "E"
                                                     : "i";
    w.kv("ph", ph);
    w.kv("ts", ev.cycles);
    w.kv("pid", static_cast<u64>(ev.session));
    w.kv("tid", static_cast<u64>(ev.priv));
    if (ev.phase == EventPhase::kInstant) w.kv("s", "t");
    w.key("args").begin_object();
    w.kv("arg", ev.arg);
    w.kv("instret", ev.instret);
    w.kv("priv", priv_name(ev.priv));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string chrome_trace_json(const EventRing& ring) {
  std::ostringstream os;
  write_chrome_trace(os, ring);
  return os.str();
}

std::string render_profile(const CycleProfile& prof) {
  std::ostringstream os;
  char line[128];

  struct Row {
    Subsystem sub;
    u64 cycles;
  };
  std::vector<Row> rows;
  for (size_t i = 0; i < kSubsystemCount; ++i) {
    rows.push_back(Row{static_cast<Subsystem>(i), prof.self_cycles[i]});
  }
  // Tie-break on the subsystem id: std::sort is unstable, so equal-cycle
  // subsystems would otherwise swap between runs of an identical simulation.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.cycles != b.cycles) return a.cycles > b.cycles;
    return a.sub < b.sub;
  });

  const double total =
      prof.total_cycles == 0 ? 1.0 : static_cast<double>(prof.total_cycles);
  os << "cycle attribution (self-cycles by subsystem)\n";
  std::snprintf(line, sizeof line, "  %-14s %16s %8s\n", "subsystem", "cycles", "%");
  os << line;
  u64 sum = 0;
  for (const Row& r : rows) {
    if (r.cycles == 0) continue;
    sum += r.cycles;
    std::snprintf(line, sizeof line, "  %-14s %16llu %7.2f%%\n", to_string(r.sub),
                  static_cast<unsigned long long>(r.cycles),
                  100.0 * static_cast<double>(r.cycles) / total);
    os << line;
  }
  std::snprintf(line, sizeof line, "  %-14s %16llu %7.2f%%\n", "TOTAL",
                static_cast<unsigned long long>(sum),
                100.0 * static_cast<double>(sum) / total);
  os << line;

  os << "\ncycles by privilege\n";
  static constexpr const char* kPrivNames[kPrivilegeCount] = {"U-mode", "S-mode",
                                                              "(res)", "M-mode"};
  for (size_t p = 0; p < kPrivilegeCount; ++p) {
    if (prof.priv_cycles[p] == 0) continue;
    std::snprintf(line, sizeof line, "  %-14s %16llu %7.2f%%\n", kPrivNames[p],
                  static_cast<unsigned long long>(prof.priv_cycles[p]),
                  100.0 * static_cast<double>(prof.priv_cycles[p]) / total);
    os << line;
  }
  std::snprintf(line, sizeof line, "  %-14s %16llu\n", "total cycles",
                static_cast<unsigned long long>(prof.total_cycles));
  os << line;
  return os.str();
}

}  // namespace ptstore::telemetry
