#include "telemetry/report.h"

#include <algorithm>
#include <sstream>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace ptstore::telemetry {

std::vector<std::pair<std::string, u64>> top_counters(const BenchReport& report,
                                                      size_t top_n) {
  std::vector<std::pair<std::string, u64>> rows(report.counters.begin(),
                                                report.counters.end());
  // The source map is name-ordered, so a stable sort on value alone already
  // breaks ties by name; the explicit tie-break keeps that guarantee even if
  // a caller ever feeds rows from an unordered source.
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top_n != 0 && rows.size() > top_n) rows.resize(top_n);
  return rows;
}

void write_bench_report(std::ostream& os, const BenchReport& report) {
  const MetricsRegistry& reg = MetricsRegistry::instance();
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", kBenchReportSchemaVersion);
  w.kv("workload", report.workload);

  w.key("config").begin_object();
  for (const auto& [k, v] : report.config) w.kv(k, v);
  w.end_object();

  w.key("measurements").begin_array();
  for (const BenchReport::Row& r : report.measurements) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("base_cycles", r.base_cycles);
    w.kv("cfi_cycles", r.cfi_cycles);
    w.kv("cfi_ptstore_cycles", r.cfi_ptstore_cycles);
    w.kv("cfi_ptstore_noadj_cycles", r.cfi_ptstore_noadj_cycles);
    w.kv("cfi_pct", r.cfi_pct);
    w.kv("cfi_ptstore_pct", r.cfi_ptstore_pct);
    w.kv("ptstore_only_pct", r.ptstore_only_pct);
    w.end_object();
  }
  w.end_array();

  w.key("counters").begin_object();
  for (const auto& [name, value] : report.counters) {
    w.key(name).begin_object();
    w.kv("value", value);
    if (const auto id = reg.find(name)) {
      const CounterMeta& m = reg.meta(*id);
      w.kv("unit", m.unit);
      if (!m.description.empty()) w.kv("description", m.description);
    }
    w.end_object();
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : report.histograms) {
    w.key(name).begin_object();
    w.kv("count", h.count);
    w.kv("mean", h.mean);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("p50", h.p50);
    w.kv("p90", h.p90);
    w.kv("p99", h.p99);
    w.end_object();
  }
  w.end_object();

  w.end_object();
  os << "\n";
}

std::string bench_report_json(const BenchReport& report) {
  std::ostringstream os;
  write_bench_report(os, report);
  return os.str();
}

}  // namespace ptstore::telemetry
