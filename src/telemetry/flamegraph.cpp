#include "telemetry/flamegraph.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

namespace ptstore::telemetry {

namespace {

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// FNV-1a over the frame name: the same function gets the same color in
/// every graph, and the SVG is a pure function of the profile.
u32 name_hash(std::string_view s) {
  u32 h = 2166136261u;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 16777619u;
  }
  return h;
}

/// Classic flamegraph warm palette, driven by the hash instead of rand().
void frame_color(std::string_view name, u32* r, u32* g, u32* b) {
  const u32 h = name_hash(name);
  *r = 205 + h % 50;
  *g = (h >> 8) % 230;
  *b = (h >> 16) % 55;
}

struct FlameNode {
  u64 self = 0;
  u64 total = 0;
  std::map<std::string, FlameNode> children;  ///< Ordered: deterministic x.
};

u64 finalize_totals(FlameNode& n) {
  n.total = n.self;
  for (auto& [name, child] : n.children) n.total += finalize_totals(child);
  return n.total;
}

size_t max_depth(const FlameNode& n) {
  size_t d = 0;
  for (const auto& [name, child] : n.children) {
    const size_t cd = 1 + max_depth(child);
    if (cd > d) d = cd;
  }
  return d;
}

struct Emitter {
  std::ostream& os;
  const FlamegraphOptions& opts;
  double px_per_cycle = 0;
  u64 root_total = 0;
  u32 svg_height = 0;

  void emit(const FlameNode& n, const std::string& name,
            const std::string& stack, u64 offset_cycles, size_t depth) {
    const double x = static_cast<double>(offset_cycles) * px_per_cycle;
    const double w = static_cast<double>(n.total) * px_per_cycle;
    if (w >= opts.min_width_px && !name.empty()) {
      // Root sits at the bottom; children stack upward.
      const u32 y = svg_height - 24 -
                    static_cast<u32>(depth) * opts.frame_height_px -
                    opts.frame_height_px;
      u32 r = 0, g = 0, b = 0;
      frame_color(name, &r, &g, &b);
      const double pct = root_total == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(n.total) /
                                   static_cast<double>(root_total);
      char buf[128];
      os << "<g>\n<title>" << xml_escape(stack);
      std::snprintf(buf, sizeof buf, "\n%llu cycles (%.2f%%)</title>\n",
                    static_cast<unsigned long long>(n.total), pct);
      os << buf;
      std::snprintf(buf, sizeof buf,
                    "<rect x=\"%.1f\" y=\"%u\" width=\"%.1f\" height=\"%u\" "
                    "fill=\"rgb(%u,%u,%u)\" rx=\"1\"/>\n",
                    x, y, w < 1.0 ? 1.0 : w, opts.frame_height_px - 1, r, g, b);
      os << buf;
      // Label only when it has room; ~6.5px per character at 11px font.
      const size_t fit = w < 20.0 ? 0 : static_cast<size_t>((w - 6.0) / 6.5);
      if (fit >= 3) {
        std::string label = name;
        if (label.size() > fit) label = label.substr(0, fit - 2) + "..";
        std::snprintf(buf, sizeof buf, "<text x=\"%.1f\" y=\"%u\">", x + 3.0,
                      y + opts.frame_height_px - 5);
        os << buf << xml_escape(label) << "</text>\n";
      }
      os << "</g>\n";
    }
    u64 child_offset = offset_cycles + n.self;
    for (const auto& [cname, child] : n.children) {
      emit(child, cname, stack.empty() ? cname : stack + ";" + cname,
           child_offset, name.empty() ? depth : depth + 1);
      child_offset += child.total;
    }
  }
};

}  // namespace

void write_flamegraph_svg(std::ostream& os, const FoldedProfile& profile,
                          const FlamegraphOptions& opts) {
  // Rebuild the frame tree from the folded keys.
  FlameNode root;
  for (const auto& [key, entry] : profile.stacks) {
    FlameNode* cur = &root;
    size_t pos = 0;
    while (pos <= key.size()) {
      const size_t semi = key.find(';', pos);
      const std::string frame = semi == std::string::npos
                                    ? key.substr(pos)
                                    : key.substr(pos, semi - pos);
      cur = &cur->children[frame];
      if (semi == std::string::npos) break;
      pos = semi + 1;
    }
    cur->self += entry.cycles;
  }
  finalize_totals(root);

  const size_t depth = max_depth(root);
  const u32 height =
      static_cast<u32>(depth) * opts.frame_height_px + 24 /* title */ +
      24 /* footer */;
  Emitter em{os, opts, 0.0, root.total, height};
  em.px_per_cycle = root.total == 0
                        ? 0.0
                        : static_cast<double>(opts.width_px) /
                              static_cast<double>(root.total);

  os << "<?xml version=\"1.0\" standalone=\"no\"?>\n"
     << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opts.width_px
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << opts.width_px << " "
     << height << "\">\n"
     << "<style>text { font-family: monospace; font-size: 11px; fill: #111; }"
     << " rect { stroke: #fff; stroke-width: 0.4; }</style>\n"
     << "<rect x=\"0\" y=\"0\" width=\"" << opts.width_px << "\" height=\""
     << height << "\" fill=\"#f8f8f8\" stroke=\"none\"/>\n"
     << "<text x=\"4\" y=\"14\" style=\"font-size:13px\">"
     << xml_escape(opts.title) << "</text>\n";
  em.emit(root, "", "", 0, 0);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "<text x=\"4\" y=\"%u\">%llu cycles total, %zu stacks"
                "%s</text>\n",
                height - 8,
                static_cast<unsigned long long>(profile.total_cycles),
                profile.stacks.size(),
                profile.truncated_frames != 0 ? " (depth-truncated)" : "");
  os << buf << "</svg>\n";
}

std::string flamegraph_svg(const FoldedProfile& profile,
                           const FlamegraphOptions& opts) {
  std::ostringstream os;
  write_flamegraph_svg(os, profile, opts);
  return os.str();
}

}  // namespace ptstore::telemetry
