#include "telemetry/metrics.h"

namespace ptstore::telemetry {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry reg;
  return reg;
}

CounterId MetricsRegistry::intern(std::string_view name,
                                  std::string_view description,
                                  std::string_view unit) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    CounterMeta& m = metas_[it->second];
    if (m.description.empty()) m.description = description;
    if (m.unit == "events" && !unit.empty()) m.unit = unit;
    return it->second;
  }
  const CounterId id = static_cast<CounterId>(metas_.size());
  metas_.push_back(CounterMeta{std::string(name), std::string(description),
                               unit.empty() ? "events" : std::string(unit)});
  by_name_.emplace(std::string(name), id);
  return id;
}

CounterMeta MetricsRegistry::meta(CounterId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return metas_[id];
}

std::optional<CounterId> MetricsRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return metas_.size();
}

StatSet merge_shard_stats(const std::vector<StatSet>& shards) {
  StatSet out;
  for (const StatSet& s : shards) out.merge(s);
  return out;
}

Counter CounterBank::counter(std::string_view name, std::string_view description,
                             std::string_view unit) {
  const CounterId id = MetricsRegistry::instance().intern(name, description, unit);
  cells_.push_back(0);
  entries_.push_back(Entry{id, &cells_.back()});
  return Counter(&cells_.back(), id);
}

void CounterBank::snapshot_into(StatSet& out) const {
  const MetricsRegistry& reg = MetricsRegistry::instance();
  for (const Entry& e : entries_) {
    if (*e.cell != 0) out.set(reg.meta(e.id).name, *e.cell);
  }
}

StatSet CounterBank::snapshot() const {
  StatSet out;
  snapshot_into(out);
  return out;
}

u64 CounterBank::value_of(std::string_view name) const {
  const auto id = MetricsRegistry::instance().find(name);
  if (!id) return 0;
  for (const Entry& e : entries_) {
    if (e.id == *id) return *e.cell;
  }
  return 0;
}

void CounterBank::clear() {
  for (u64& c : cells_) c = 0;
}

}  // namespace ptstore::telemetry
