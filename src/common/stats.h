// Named statistic counters. Hardware and kernel models register counters in
// a StatSet; benches and tests read them back for reporting and assertions.
#pragma once

#include <map>
#include <string>

#include "common/types.h"

namespace ptstore {

/// A flat collection of named 64-bit counters plus derived-ratio helpers.
class StatSet {
 public:
  /// Add `delta` to counter `name`, creating it at zero if absent.
  void add(const std::string& name, u64 delta = 1) { counters_[name] += delta; }

  void set(const std::string& name, u64 value) { counters_[name] = value; }

  /// Value of counter `name`, 0 if it has never been touched.
  u64 get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  bool has(const std::string& name) const { return counters_.count(name) != 0; }

  /// numerator/(numerator+denominator)-style hit ratio; 0 when empty.
  double ratio(const std::string& num, const std::string& den) const {
    const u64 n = get(num);
    const u64 d = get(den);
    return (n + d) == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(n + d);
  }

  void clear() { counters_.clear(); }

  const std::map<std::string, u64>& counters() const { return counters_; }

  /// Merge all counters from `other` into this set.
  void merge(const StatSet& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

  std::string to_string() const;

 private:
  std::map<std::string, u64> counters_;
};

}  // namespace ptstore
