// Log₂-bucketed histogram for latency distributions: constant-size, O(1)
// insert, percentile queries with intra-bucket interpolation. Used by the
// kernel's optional per-syscall latency collection and the latency bench.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <string>

#include "common/bits.h"
#include "common/types.h"

namespace ptstore {

class Histogram {
 public:
  static constexpr unsigned kBuckets = 64;

  void record(u64 value) {
    const unsigned b = value == 0 ? 0 : 64 - static_cast<unsigned>(std::countl_zero(value));
    ++buckets_[std::min(b, kBuckets - 1)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  u64 count() const { return count_; }
  u64 min() const { return count_ ? min_ : 0; }
  u64 max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at percentile p (0 < p <= 100), linearly interpolated within the
  /// containing power-of-two bucket. Zero when empty.
  u64 percentile(double p) const {
    if (count_ == 0) return 0;
    assert(p > 0.0 && p <= 100.0);
    const double target = p / 100.0 * static_cast<double>(count_);
    u64 seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      if (static_cast<double>(seen + buckets_[b]) >= target) {
        const u64 lo = b == 0 ? 0 : u64{1} << (b - 1);
        const u64 hi = b == 0 ? 1 : (b >= 63 ? ~u64{0} : (u64{1} << b));
        const double frac = (target - static_cast<double>(seen)) /
                            static_cast<double>(buckets_[b]);
        const u64 v = lo + static_cast<u64>(static_cast<double>(hi - lo) * frac);
        // Interpolation cannot produce values outside the observed range.
        return std::clamp(v, min_, max_);
      }
      seen += buckets_[b];
    }
    return max_;
  }

  void merge(const Histogram& other) {
    for (unsigned b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    if (other.count_ != 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void clear() { *this = Histogram{}; }

  /// "n=.. mean=.. p50=.. p99=.. max=.." summary line.
  std::string summary() const;

 private:
  std::array<u64, kBuckets> buckets_{};
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = 0;
  u64 max_ = 0;
};

}  // namespace ptstore
