// Deterministic pseudo-random number generator (xoshiro256**), seeded
// explicitly so every simulation run and workload trace is reproducible.
#pragma once

#include <cassert>

#include "common/types.h"

namespace ptstore {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15) { reseed(seed); }

  void reseed(u64 seed) {
    // SplitMix64 to expand the seed into the xoshiro state.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EB;
      s = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  u64 next_below(u64 bound) {
    assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (~bound + 1) % bound;
    for (;;) {
      const u64 r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  u64 next_range(u64 lo, u64 hi) {
    assert(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4]{};
};

}  // namespace ptstore
