// Core scalar types and architectural constants shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ptstore {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Physical address in the simulated machine.
using PhysAddr = u64;
/// Virtual address in the simulated machine (Sv39: 39 significant bits).
using VirtAddr = u64;
/// Cycle count of the timing model.
using Cycles = u64;

inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageSize = u64{1} << kPageShift;
inline constexpr u64 kPageMask = kPageSize - 1;

/// Size of one page-table entry (Sv39).
inline constexpr u64 kPteSize = 8;
/// Number of PTEs per 4 KiB page-table page.
inline constexpr u64 kPtesPerPage = kPageSize / kPteSize;

/// Base of simulated DRAM (matches common RISC-V platform maps).
inline constexpr PhysAddr kDramBase = 0x8000'0000;

inline constexpr u64 KiB(u64 n) { return n << 10; }
inline constexpr u64 MiB(u64 n) { return n << 20; }
inline constexpr u64 GiB(u64 n) { return n << 30; }

/// RISC-V privilege levels.
enum class Privilege : u8 {
  kUser = 0,
  kSupervisor = 1,
  kMachine = 3,
};

/// What kind of agent issues a memory access. PTStore's PMP extension
/// distinguishes these three: regular instructions, the dedicated
/// ld.pt/sd.pt instructions, and hardware page-table-walker fetches.
enum class AccessKind : u8 {
  kRegular = 0,   ///< Ordinary load/store/fetch.
  kPtInsn = 1,    ///< ld.pt / sd.pt secure-region instructions.
  kPtw = 2,       ///< MMU page-table walker PTE fetch.
};

/// Read/write/execute intent of a memory access.
enum class AccessType : u8 {
  kRead = 0,
  kWrite = 1,
  kExecute = 2,
};

const char* to_string(Privilege p);
const char* to_string(AccessKind k);
const char* to_string(AccessType t);

}  // namespace ptstore
