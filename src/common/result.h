// Minimal Result type for non-throwing factory APIs (System::create).
// Either a value or a human-readable error string — nothing clever, just
// enough to report *why* construction failed without exceptions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ptstore {

template <typename T>
class Result {
 public:
  static Result success(T value) {
    Result r;
    r.value_ = std::move(value);
    return r;
  }

  static Result failure(std::string error) {
    Result r;
    r.error_ = std::move(error);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Empty string when ok().
  const std::string& error() const { return error_; }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace ptstore
