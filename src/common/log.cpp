#include "common/log.h"

#include <cstdarg>
#include <vector>

namespace ptstore {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel lv) {
  switch (lv) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lv) { g_level = lv; }

void log_message(LogLevel lv, const char* tag, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(lv), tag, msg.c_str());
}

namespace detail {
std::string format_args(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n <= 0) {
    va_end(ap2);
    return {};
  }
  std::vector<char> buf(static_cast<size_t>(n) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
  va_end(ap2);
  return std::string(buf.data(), static_cast<size_t>(n));
}
}  // namespace detail

}  // namespace ptstore
