// Bit-manipulation helpers used by the ISA, PMP, and MMU models.
#pragma once

#include <bit>
#include <cassert>

#include "common/types.h"

namespace ptstore {

/// Mask with the low `n` bits set. n may be 0..64.
constexpr u64 mask_lo(unsigned n) {
  return n >= 64 ? ~u64{0} : (u64{1} << n) - 1;
}

/// Extract bits [lo, lo+width) of v.
constexpr u64 bits(u64 v, unsigned lo, unsigned width) {
  assert(lo < 64 && width >= 1 && width <= 64);
  return (v >> lo) & mask_lo(width);
}

/// Extract single bit `pos` of v.
constexpr u64 bit(u64 v, unsigned pos) { return (v >> pos) & 1; }

/// Return v with bits [lo, lo+width) replaced by the low bits of field.
constexpr u64 insert_bits(u64 v, unsigned lo, unsigned width, u64 field) {
  const u64 m = mask_lo(width) << lo;
  return (v & ~m) | ((field << lo) & m);
}

/// Sign-extend the low `width` bits of v to 64 bits.
constexpr i64 sign_extend(u64 v, unsigned width) {
  assert(width >= 1 && width <= 64);
  if (width == 64) return static_cast<i64>(v);
  const u64 sign = u64{1} << (width - 1);
  return static_cast<i64>(((v & mask_lo(width)) ^ sign)) - static_cast<i64>(sign);
}

constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr u64 align_down(u64 v, u64 align) {
  assert(is_pow2(align));
  return v & ~(align - 1);
}

constexpr u64 align_up(u64 v, u64 align) {
  assert(is_pow2(align));
  return (v + align - 1) & ~(align - 1);
}

constexpr bool is_aligned(u64 v, u64 align) { return align_down(v, align) == v; }

/// log2 of a power of two.
constexpr unsigned log2_exact(u64 v) {
  assert(is_pow2(v));
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Smallest power of two >= v (v must be nonzero and representable).
constexpr u64 round_up_pow2(u64 v) {
  assert(v != 0);
  return std::bit_ceil(v);
}

/// True if [a, a+na) and [b, b+nb) overlap. Empty ranges never overlap.
constexpr bool ranges_overlap(u64 a, u64 na, u64 b, u64 nb) {
  if (na == 0 || nb == 0) return false;
  return a < b + nb && b < a + na;
}

/// True if [inner, inner+ni) is contained in [outer, outer+no).
constexpr bool range_contains(u64 outer, u64 no, u64 inner, u64 ni) {
  return inner >= outer && inner + ni <= outer + no && inner + ni >= inner;
}

}  // namespace ptstore
