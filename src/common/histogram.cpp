#include "common/histogram.h"
#include <sstream>
namespace ptstore {
std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << static_cast<u64>(mean())
     << " p50=" << percentile(50) << " p99=" << percentile(99)
     << " max=" << max_;
  return os.str();
}
}  // namespace ptstore
