#include "common/stats.h"

#include <sstream>

namespace ptstore {

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << " = " << v << "\n";
  return os.str();
}

}  // namespace ptstore
