#include "common/types.h"

namespace ptstore {

const char* to_string(Privilege p) {
  switch (p) {
    case Privilege::kUser: return "U";
    case Privilege::kSupervisor: return "S";
    case Privilege::kMachine: return "M";
  }
  return "?";
}

const char* to_string(AccessKind k) {
  switch (k) {
    case AccessKind::kRegular: return "regular";
    case AccessKind::kPtInsn: return "pt-insn";
    case AccessKind::kPtw: return "ptw";
  }
  return "?";
}

const char* to_string(AccessType t) {
  switch (t) {
    case AccessType::kRead: return "read";
    case AccessType::kWrite: return "write";
    case AccessType::kExecute: return "execute";
  }
  return "?";
}

}  // namespace ptstore
