// Minimal leveled logger. Simulation components log through this so tests
// can silence or capture output deterministically.
#pragma once

#include <cstdio>
#include <string>

namespace ptstore {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Global log threshold; messages above it are dropped. Defaults to kWarn so
/// test and benchmark output stays clean.
LogLevel log_level();
void set_log_level(LogLevel lv);

void log_message(LogLevel lv, const char* tag, const std::string& msg);

namespace detail {
std::string format_args(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define PTSTORE_LOG(lv, tag, ...)                                        \
  do {                                                                    \
    if (static_cast<int>(lv) <= static_cast<int>(::ptstore::log_level())) \
      ::ptstore::log_message(lv, tag, ::ptstore::detail::format_args(__VA_ARGS__)); \
  } while (0)

#define LOG_ERROR(tag, ...) PTSTORE_LOG(::ptstore::LogLevel::kError, tag, __VA_ARGS__)
#define LOG_WARN(tag, ...) PTSTORE_LOG(::ptstore::LogLevel::kWarn, tag, __VA_ARGS__)
#define LOG_INFO(tag, ...) PTSTORE_LOG(::ptstore::LogLevel::kInfo, tag, __VA_ARGS__)
#define LOG_DEBUG(tag, ...) PTSTORE_LOG(::ptstore::LogLevel::kDebug, tag, __VA_ARGS__)

}  // namespace ptstore
