// Fully-associative TLB model with ASID tagging and Sv39 superpage support.
// The paper's prototype uses a 32-entry I-TLB and an 8-entry D-TLB.
//
// TLB entries cache the *virtual* permission bits of a translation. PTStore's
// key point against TLB-inconsistency attacks (paper §V-E5) is that its
// secure-region check is physical (PMP) and applied on every access — so a
// stale writable TLB entry still cannot write the secure region. The model
// deliberately reproduces stale-entry behaviour so the attack scenario is
// faithful.
//
// Host-speed notes: stat counters are interned telemetry handles synthesized
// into the StatSet on read, and a one-entry memo replays the previous successful
// lookup without rescanning. The memo is set only by a real scan hit and
// dropped on insert/flush, so it always returns the same entry (with the
// same LRU update) the scan would.
#pragma once

#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "telemetry/metrics.h"

namespace ptstore {

/// One cached translation. `level` is the Sv39 leaf level: 0 = 4 KiB page,
/// 1 = 2 MiB, 2 = 1 GiB superpage.
struct TlbEntry {
  bool valid = false;
  bool global = false;
  u16 asid = 0;
  VirtAddr vpn = 0;  ///< VA >> 12, canonical low 27 bits.
  unsigned level = 0;
  u64 pte = 0;  ///< Raw leaf PTE (permissions + PPN).
  u64 lru_tick = 0;
};

struct TlbConfig {
  std::string name = "TLB";
  unsigned entries = 32;
  Cycles hit_latency = 0;  ///< Folded into the access pipeline.
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg)
      : cfg_(cfg),
        slots_(cfg.entries),
        hits_(bank_.counter(cfg.name + ".hits", "TLB hits")),
        misses_(bank_.counter(cfg.name + ".misses", "TLB misses")),
        fills_(bank_.counter(cfg.name + ".fills", "TLB fills")),
        flushes_(bank_.counter(cfg.name + ".flushes", "sfence.vma flushes")) {}

  /// Look up virtual address `va` under `asid`. Superpage entries match any
  /// VA within their reach.
  const TlbEntry* lookup(VirtAddr va, u16 asid);

  /// Insert a translation; evicts LRU.
  void insert(VirtAddr va, u16 asid, unsigned level, u64 pte, bool global);

  /// sfence.vma semantics. `va`/`asid` of nullopt mean "all".
  void flush(std::optional<VirtAddr> va, std::optional<u16> asid);

  const TlbConfig& config() const { return cfg_; }
  const StatSet& stats() const;
  void clear_stats();

  unsigned occupancy() const;

 private:
  static u64 vpn_mask(unsigned level);
  TlbConfig cfg_;
  std::vector<TlbEntry> slots_;
  u64 tick_ = 0;

  // Memo of the previous scan hit; cleared whenever entries change shape
  // (insert can create a duplicate match — e.g. the D-bit-clear re-walk —
  // and the scan's first-match order must be preserved exactly).
  VirtAddr last_vpn_ = ~u64{0};
  u16 last_asid_ = 0;
  TlbEntry* last_entry_ = nullptr;

  telemetry::CounterBank bank_;
  telemetry::Counter hits_;
  telemetry::Counter misses_;
  telemetry::Counter fills_;
  telemetry::Counter flushes_;
  mutable StatSet stats_;
};

}  // namespace ptstore
