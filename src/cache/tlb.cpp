#include "cache/tlb.h"

#include "common/bits.h"

namespace ptstore {

u64 Tlb::vpn_mask(unsigned level) {
  // Sv39 VPN is 27 bits (3 x 9). A level-N leaf ignores the low 9*N VPN bits.
  return mask_lo(27) & ~mask_lo(9 * level);
}

const TlbEntry* Tlb::lookup(VirtAddr va, u16 asid) {
  const u64 vpn = (va >> kPageShift) & mask_lo(27);
  ++tick_;

  // Repeat of the previous hit: no insert/flush ran since (those drop the
  // memo), so the same entry is still the scan's first match.
  if (last_entry_ != nullptr && vpn == last_vpn_ && asid == last_asid_) {
    last_entry_->lru_tick = tick_;
    hits_.add();
    return last_entry_;
  }

  for (auto& e : slots_) {
    if (!e.valid) continue;
    if (!e.global && e.asid != asid) continue;
    const u64 m = vpn_mask(e.level);
    if ((vpn & m) == (e.vpn & m)) {
      e.lru_tick = tick_;
      hits_.add();
      last_vpn_ = vpn;
      last_asid_ = asid;
      last_entry_ = &e;
      return &e;
    }
  }
  misses_.add();
  return nullptr;
}

void Tlb::insert(VirtAddr va, u16 asid, unsigned level, u64 pte, bool global) {
  const u64 vpn = (va >> kPageShift) & mask_lo(27);
  ++tick_;
  TlbEntry* victim = &slots_[0];
  for (auto& e : slots_) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru_tick < victim->lru_tick) victim = &e;
  }
  *victim = TlbEntry{.valid = true,
                     .global = global,
                     .asid = asid,
                     .vpn = vpn,
                     .level = level,
                     .pte = pte,
                     .lru_tick = tick_};
  last_entry_ = nullptr;
  fills_.add();
}

void Tlb::flush(std::optional<VirtAddr> va, std::optional<u16> asid) {
  const std::optional<u64> vpn =
      va ? std::optional<u64>((*va >> kPageShift) & mask_lo(27)) : std::nullopt;
  for (auto& e : slots_) {
    if (!e.valid) continue;
    // Per the privileged spec, ASID-specific flushes do not remove global
    // entries; address-specific flushes match superpage reach.
    if (asid && !e.global && e.asid != *asid) continue;
    if (asid && e.global) continue;
    if (vpn) {
      const u64 m = vpn_mask(e.level);
      if ((*vpn & m) != (e.vpn & m)) continue;
    }
    e.valid = false;
  }
  last_entry_ = nullptr;
  flushes_.add();
}

unsigned Tlb::occupancy() const {
  unsigned n = 0;
  for (const auto& e : slots_) n += e.valid ? 1 : 0;
  return n;
}

const StatSet& Tlb::stats() const {
  bank_.snapshot_into(stats_);
  return stats_;
}

void Tlb::clear_stats() {
  bank_.clear();
  stats_.clear();
}

}  // namespace ptstore
