// Set-associative cache timing model (tag array only — data lives in
// PhysMem). Mirrors the paper's prototype config: 16 KiB 4-way L1I/L1D with
// 64 B lines. Used purely for cycle accounting; correctness never depends
// on it.
//
// Host-speed notes: counters are interned telemetry handles bumped with a
// single indirected increment and synthesized into the StatSet on read, and
// a one-entry "last block" memo short-cuts the way scan for consecutive
// accesses to the same line. Both are exact: the memo only replays an
// access whose outcome (hit, LRU update, dirty bit) is provably identical
// to what the scan would produce.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/stats.h"
#include "common/types.h"
#include "telemetry/metrics.h"

namespace ptstore {

struct CacheConfig {
  std::string name = "L1";
  u64 size_bytes = KiB(16);
  unsigned ways = 4;
  unsigned line_bytes = 64;
  Cycles hit_latency = 1;
  Cycles miss_penalty = 30;        ///< DRAM access on miss.
  Cycles dirty_evict_penalty = 8;  ///< Extra writeback cost.
};

/// Result of one cache access, in cycles.
struct CacheAccessResult {
  bool hit = false;
  Cycles cycles = 0;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Two-level helper: access `l1`, and on a miss charge the `l2` lookup
  /// instead of l1's DRAM penalty (l2 == nullptr degrades to l1-only).
  /// Returns the cycles *beyond* l1's hit latency — the "excess" the core
  /// charges on top of its base CPI.
  static Cycles hierarchy_access(Cache& l1, Cache* l2, PhysAddr pa, bool is_write);

  /// Simulate an access to physical address `pa`. Write accesses mark the
  /// line dirty (write-allocate, write-back policy).
  CacheAccessResult access(PhysAddr pa, bool is_write);

  /// Drop every line (e.g., fence.i on the I-cache).
  void invalidate_all();

  const CacheConfig& config() const { return cfg_; }
  const StatSet& stats() const;
  void clear_stats();

  unsigned num_sets() const { return num_sets_; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    u64 tag = 0;
    u64 lru_tick = 0;
  };

  CacheConfig cfg_;
  unsigned num_sets_;
  unsigned line_shift_;
  std::vector<Line> lines_;  // num_sets_ * ways, row-major by set.
  u64 tick_ = 0;

  // Last-access memo: the line the previous access touched is valid and
  // MRU, so a repeat access to the same block is a guaranteed hit.
  u64 last_block_ = ~u64{0};
  Line* last_line_ = nullptr;

  telemetry::CounterBank bank_;
  telemetry::Counter hits_;
  telemetry::Counter misses_;
  telemetry::Counter writebacks_;
  telemetry::Counter flushes_;
  mutable StatSet stats_;
};

}  // namespace ptstore
