#include "cache/cache.h"

namespace ptstore {

Cache::Cache(const CacheConfig& cfg)
    : cfg_(cfg),
      hits_(bank_.counter(cfg.name + ".hits", "cache hits")),
      misses_(bank_.counter(cfg.name + ".misses", "cache misses")),
      writebacks_(bank_.counter(cfg.name + ".writebacks", "dirty-line writebacks")),
      flushes_(bank_.counter(cfg.name + ".flushes", "full invalidations")) {
  assert(is_pow2(cfg.size_bytes) && is_pow2(cfg.line_bytes));
  assert(cfg.ways >= 1);
  const u64 num_lines = cfg.size_bytes / cfg.line_bytes;
  assert(num_lines % cfg.ways == 0);
  num_sets_ = static_cast<unsigned>(num_lines / cfg.ways);
  assert(is_pow2(num_sets_));
  line_shift_ = log2_exact(cfg.line_bytes);
  lines_.resize(num_lines);
}

CacheAccessResult Cache::access(PhysAddr pa, bool is_write) {
  const u64 block = pa >> line_shift_;

  // Same block as the previous access: that line is valid and MRU, and no
  // other access has run since, so the way scan below would find exactly it.
  if (block == last_block_ && last_line_ != nullptr) {
    ++tick_;
    last_line_->lru_tick = tick_;
    last_line_->dirty = last_line_->dirty || is_write;
    hits_.add();
    return {true, cfg_.hit_latency};
  }

  const unsigned set = static_cast<unsigned>(block & (num_sets_ - 1));
  const u64 tag = block >> log2_exact(num_sets_);
  Line* row = &lines_[static_cast<size_t>(set) * cfg_.ways];
  ++tick_;

  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Line& ln = row[w];
    if (ln.valid && ln.tag == tag) {
      ln.lru_tick = tick_;
      ln.dirty = ln.dirty || is_write;
      hits_.add();
      last_block_ = block;
      last_line_ = &ln;
      return {true, cfg_.hit_latency};
    }
  }

  // Miss: pick the LRU victim (preferring an invalid way).
  Line* victim = &row[0];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Line& ln = row[w];
    if (!ln.valid) {
      victim = &ln;
      break;
    }
    if (ln.lru_tick < victim->lru_tick) victim = &ln;
  }

  Cycles cycles = cfg_.hit_latency + cfg_.miss_penalty;
  if (victim->valid && victim->dirty) {
    cycles += cfg_.dirty_evict_penalty;
    writebacks_.add();
  }
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru_tick = tick_;
  misses_.add();
  last_block_ = block;
  last_line_ = victim;
  return {false, cycles};
}

Cycles Cache::hierarchy_access(Cache& l1, Cache* l2, PhysAddr pa, bool is_write) {
  const CacheAccessResult r1 = l1.access(pa, is_write);
  if (r1.hit || l2 == nullptr) return r1.cycles - l1.config().hit_latency;
  // L1 missed: replace its DRAM penalty with the L2 lookup (which itself
  // pays DRAM only on an L2 miss). Writebacks keep their cost.
  const Cycles l1_extra = r1.cycles - l1.config().hit_latency - l1.config().miss_penalty;
  const CacheAccessResult r2 = l2->access(pa, is_write);
  return l1_extra + r2.cycles;
}

void Cache::invalidate_all() {
  for (auto& ln : lines_) ln = Line{};
  last_block_ = ~u64{0};
  last_line_ = nullptr;
  flushes_.add();
}

const StatSet& Cache::stats() const {
  // Materialize map entries only for events that happened, matching the
  // old behaviour where a key existed iff its counter had been bumped.
  bank_.snapshot_into(stats_);
  return stats_;
}

void Cache::clear_stats() {
  bank_.clear();
  stats_.clear();
}

}  // namespace ptstore
