// Real U-mode compute for the macro workloads: instead of charging every
// user instruction abstractly, a slice of each workload's user time runs as
// actual RV64 machine code on the interpreter (demand-paged, satp.S-checked
// page tables — the full co-design loop). This grounds the benches in real
// execution and gives the decoded basic-block cache a hot loop to earn its
// keep on; the abstract remainder keeps paper-scale instruction counts
// affordable.
#pragma once

#include <set>

#include "kernel/guest.h"
#include "kernel/system.h"

namespace ptstore::workloads {

/// A resident U-mode compute loop per process: an ALU/load/store kernel
/// loaded once per pid and resumed in slices. Instruction streams are
/// identical across the paper's configurations, so overhead ratios are
/// unaffected — only the cycle cost of each instruction varies.
class UserCompute {
 public:
  explicit UserCompute(System& sys) : runner_(sys.kernel()) {}

  /// Execute ~`budget` real user instructions in `proc` (resuming where the
  /// previous slice stopped) and return the count actually retired — the
  /// caller deducts it from the abstract charge. Returns 0 if the program
  /// cannot be loaded (tiny DRAM), letting the caller fall back to fully
  /// abstract accounting.
  u64 run(Process& proc, u64 budget);

  /// Where the loop lives in user VA space (clear of workload arenas).
  static constexpr VirtAddr kEntry = kUserSpaceBase + MiB(8);

 private:
  GuestRunner runner_;
  std::set<u64> loaded_;  ///< pids with the loop resident.
};

}  // namespace ptstore::workloads
