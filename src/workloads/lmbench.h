// LMBench 3.0-a9-shaped microbenchmark suite (paper Fig. 4): each test is a
// tight loop over one syscall or trap path, run against the live kernel
// model. Iteration counts follow the paper (1,000 per test).
#pragma once

#include <vector>

#include "workloads/runner.h"

namespace ptstore::workloads {

struct MicroTest {
  std::string name;
  /// Drives `iters` iterations of the test against the system.
  std::function<void(System&, u64 iters)> body;
};

/// The LMBench-like tests of Fig. 4, in the paper's spirit and order.
std::vector<MicroTest> lmbench_suite();

/// Run one test: per-iteration user-side loop overhead plus the kernel path.
void run_micro(System& sys, const MicroTest& test, u64 iters);

/// §V-D1 fork-stress: create `procs` processes at the same time, then reap
/// them all; the workload that triggers secure-region adjustments.
void run_fork_stress(System& sys, u64 procs);

}  // namespace ptstore::workloads
