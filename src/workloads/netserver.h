// Kernel-intensive server workloads: the NGINX benchmark (paper Fig. 6,
// 10,000 requests at 100 concurrent) and the Redis benchmark (Fig. 7,
// 100,000 requests per request type, 50 parallel connections). Both are
// syscall-dominated, which is where the paper's <8.18% (CFI) and <0.86%
// (PTStore-only) kernel-bound overheads come from.
#pragma once

#include "workloads/runner.h"

namespace ptstore::workloads {

/// One NGINX test case (one bar of Fig. 6): static file of `file_bytes`.
struct NginxCase {
  std::string name;
  u64 file_bytes;
  bool keepalive = false;
};

std::vector<NginxCase> nginx_cases();

/// Serve `requests` requests of `c` with `concurrency` in-flight
/// connections across 4 worker processes.
void run_nginx(System& sys, const NginxCase& c, u64 requests, unsigned concurrency);

/// One redis-benchmark request type (one bar of Fig. 7).
struct RedisCase {
  std::string name;
  u64 user_instrs;       ///< Server-side command processing cost.
  bool allocates = false;///< Write commands grow the heap.
};

std::vector<RedisCase> redis_cases();

void run_redis(System& sys, const RedisCase& c, u64 requests, unsigned connections);

}  // namespace ptstore::workloads
