#include "workloads/spec.h"

#include <algorithm>

#include "mmu/pte.h"
#include "workloads/usercode.h"

namespace ptstore::workloads {

std::vector<SpecProfile> spec_cint2006() {
  // CPI / footprint / kernel-interaction rates follow the benchmarks'
  // published characters: mcf and omnetpp are memory-bound (high CPI),
  // gcc and xalancbmk allocate heavily (fault + syscall rates), the
  // compute kernels (hmmer, sjeng, libquantum) barely enter the kernel.
  return {
      {"401.bzip2", 1.1, 2000, 2.0, 0.5},
      {"403.gcc", 1.3, 4000, 45.0, 6.0},
      {"429.mcf", 2.2, 8000, 8.0, 0.3},
      {"445.gobmk", 1.2, 800, 3.0, 1.0},
      {"456.hmmer", 1.0, 400, 1.0, 0.3},
      {"458.sjeng", 1.1, 600, 1.0, 0.3},
      {"462.libquantum", 1.6, 1500, 2.0, 0.2},
      {"464.h264ref", 1.1, 1200, 3.0, 1.0},
      {"471.omnetpp", 1.8, 3000, 20.0, 4.0},
      {"473.astar", 1.5, 2500, 6.0, 1.0},
      {"483.xalancbmk", 1.4, 3500, 35.0, 8.0},
  };
}

namespace {
constexpr VirtAddr kHeap = kUserSpaceBase + GiB(16);
constexpr VirtAddr kChurn = kUserSpaceBase + GiB(24);
constexpr u64 kChurnPages = 512;
// Of each 1-Minstr slice, this many instructions run as real U-mode code
// (see usercode.h); the rest is charged abstractly at the profile's CPI.
constexpr u64 kRealPerSlice = 20'000;
}  // namespace

void run_spec(System& sys, const SpecProfile& prof, u64 minstr) {
  Kernel& k = sys.kernel();
  Process& p = sys.init();
  TickModel tick;
  tick.reset(k);

  // Startup: load + demand-fault the working set.
  k.syscall(p, Sys::kOpenClose);
  k.syscall(p, Sys::kBrk);
  if (!k.processes().add_vma(p, kHeap, prof.footprint_pages * kPageSize,
                             pte::kR | pte::kW)) {
    return;
  }
  for (u64 i = 0; i < prof.footprint_pages; ++i) {
    k.user_access(p, kHeap + i * kPageSize, /*write=*/true);
    if ((i & 63) == 0) tick.advance(k);
  }

  // Steady state: 1-Minstr slices of user compute, interleaved with the
  // profile's kernel interactions.
  const Cycles cpi_milli = static_cast<Cycles>(prof.user_cpi * 1000.0);
  UserCompute uc(sys);
  u64 churn_next = 0;
  bool churn_mapped = false;
  double fault_debt = 0, sys_debt = 0;
  for (u64 s = 0; s < minstr; ++s) {
    // User compute: a real U-mode slice, then the abstract remainder (CPI
    // in 1/1000ths to keep integer cycle accounting).
    const u64 real = std::min<u64>(uc.run(p, kRealPerSlice), 500'000);
    const u64 abstract = 1'000'000 - real;
    sys.core().retire_abstract(abstract, 1);
    sys.core().add_cycles((abstract / 1'000) * (cpi_milli - 1000));
    tick.advance(k);

    fault_debt += prof.faults_per_minstr;
    while (fault_debt >= 1.0) {
      fault_debt -= 1.0;
      if (!churn_mapped || churn_next >= kChurnPages) {
        if (churn_mapped) k.processes().remove_vma(p, kChurn, kChurnPages * kPageSize);
        k.syscall(p, Sys::kMmap);
        churn_mapped = k.processes().add_vma(p, kChurn, kChurnPages * kPageSize,
                                             pte::kR | pte::kW);
        churn_next = 0;
        if (!churn_mapped) break;
      }
      k.user_access(p, kChurn + churn_next * kPageSize, /*write=*/true);
      ++churn_next;
    }

    sys_debt += prof.sys_per_minstr;
    while (sys_debt >= 1.0) {
      sys_debt -= 1.0;
      k.syscall(p, (s & 1) ? Sys::kRead : Sys::kBrk);
    }
  }
  if (churn_mapped) k.processes().remove_vma(p, kChurn, kChurnPages * kPageSize);
}

}  // namespace ptstore::workloads
