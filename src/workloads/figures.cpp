// The figure-reproduction workloads (Fig. 4-7 and §V-D1) as registered
// MatrixWorkloads: one place for the case lists, paper bounds, and footers
// that used to be duplicated across the bench_*.cpp mains. Each bench
// binary is now a one-line run_workload_main("<name>", ...) call.
#include "workloads/lmbench.h"
#include "workloads/netserver.h"
#include "workloads/runner.h"
#include "workloads/spec.h"

namespace ptstore::workloads {

namespace {

// ---- Figure 4: LMBench + lat_ctx ----

class LmbenchWorkload : public MatrixWorkload {
 public:
  std::string name() const override { return "lmbench"; }
  std::string title() const override {
    return "Figure 4 — LMBench microbenchmark overheads\n"
           "Each test runs 1,000 iterations per configuration (paper setup);\n"
           "the trailing ctx rows are the lat_ctx context-switch ring (500\n"
           "round trips over N processes).\n"
           "Paper: CFI bars are a few percent; the PTStore delta over CFI is\n"
           "negligible except on fork paths; short tests show noise.";
  }

 protected:
  std::vector<MatrixCase> cases() override {
    std::vector<MatrixCase> out;
    const u64 iters = 1000;
    suite_rows_ = 0;
    for (const MicroTest& test : lmbench_suite()) {
      out.push_back({test.name, MiB(256),
                     [test, iters](System& sys) { run_micro(sys, test, iters); }});
      ++suite_rows_;
    }
    // lat_ctx companion: more processes -> more TLB/cache pressure per
    // switch; PTStore's token check rides along at constant cost.
    for (const unsigned procs : {2u, 4u, 8u, 16u}) {
      out.push_back({"ctx " + std::to_string(procs) + "p", MiB(256),
                     [procs](System& sys) {
                       Kernel& k = sys.kernel();
                       std::vector<Process*> ring;
                       for (unsigned i = 0; i < procs; ++i) {
                         Process* p = k.processes().fork(sys.init());
                         if (p == nullptr) return;
                         ring.push_back(p);
                       }
                       for (int round = 0; round < 500; ++round) {
                         for (Process* p : ring) k.processes().switch_to(*p);
                       }
                       for (Process* p : ring) k.processes().exit(*p);
                       k.processes().switch_to(sys.init());
                     }});
    }
    return out;
  }

  int check(const std::vector<Measurement>& rows) override {
    double sum_cfi = 0, sum_pt = 0;
    for (size_t i = 0; i < suite_rows_; ++i) {
      sum_cfi += rows[i].cfi_ptstore_pct();
      sum_pt += rows[i].ptstore_only_pct();
    }
    const double n = static_cast<double>(suite_rows_);
    std::printf("%-18s %10s %14.2f %14.2f\n", "AVERAGE (lmbench)", "", sum_cfi / n,
                sum_pt / n);
    const bool ok = (sum_pt / n) < 0.86;
    std::printf("\nPaper headline: PTStore-only kernel-bound overhead <0.86%% — %s\n",
                ok ? "OK" : "EXCEEDED");
    return ok ? 0 : 1;
  }

 private:
  size_t suite_rows_ = 0;
};

// ---- Figure 5: SPEC CINT2006 ----

class SpecWorkload : public MatrixWorkload {
 public:
  std::string name() const override { return "spec"; }
  std::string title() const override {
    return "Figure 5 — SPEC CINT2006 execution-time overheads (" +
           std::to_string(minstr()) +
           " Minstr per benchmark)\n"
           "Paper: average CFI+PTStore <0.91%; PTStore-only <0.29%.";
  }

 protected:
  // Millions of user instructions per benchmark.
  static u64 minstr() { return scaled(200, 30); }

  std::vector<MatrixCase> cases() override {
    std::vector<MatrixCase> out;
    const u64 m = minstr();
    for (const SpecProfile& prof : spec_cint2006()) {
      out.push_back({prof.name, MiB(512),
                     [prof, m](System& sys) { run_spec(sys, prof, m); }});
    }
    return out;
  }

  int check(const std::vector<Measurement>& rows) override {
    double sum_cfi = 0, sum_pt = 0;
    for (const Measurement& m : rows) {
      sum_cfi += m.cfi_ptstore_pct();
      sum_pt += m.ptstore_only_pct();
    }
    const double n = static_cast<double>(rows.size());
    std::printf("%-18s %10s %14.3f %14.3f\n", "AVERAGE", "", sum_cfi / n,
                sum_pt / n);
    const bool ok = sum_cfi / n < 0.91 && sum_pt / n < 0.29;
    std::printf("\nPaper bounds: avg CFI+PTStore <0.91%% (%s), PTStore-only "
                "<0.29%% (%s)\n",
                sum_cfi / n < 0.91 ? "OK" : "EXCEEDED",
                sum_pt / n < 0.29 ? "OK" : "EXCEEDED");
    return ok ? 0 : 1;
  }
};

// ---- Figure 6: NGINX ----

class NginxWorkload : public MatrixWorkload {
 public:
  std::string name() const override { return "nginx"; }
  std::string title() const override {
    return "Figure 6 — NGINX overheads (" + std::to_string(requests()) +
           " requests, 100 concurrent)\n"
           "Paper: kernel-bound CFI+PTStore <8.18%; PTStore-only <0.86%.";
  }

 protected:
  static u64 requests() { return scaled(10000, 2500); }

  std::vector<MatrixCase> cases() override {
    std::vector<MatrixCase> out;
    const u64 req = requests();
    for (const NginxCase& c : nginx_cases()) {
      out.push_back({c.name, MiB(512),
                     [c, req](System& sys) { run_nginx(sys, c, req, 100); }});
    }
    return out;
  }

  int check(const std::vector<Measurement>& rows) override {
    double worst_cfi = 0, worst_pt = 0;
    for (const Measurement& m : rows) {
      worst_cfi = std::max(worst_cfi, m.cfi_ptstore_pct());
      worst_pt = std::max(worst_pt, m.ptstore_only_pct());
    }
    const bool ok = worst_cfi < 8.18 && worst_pt < 0.86;
    std::printf("\nWorst case: CFI+PTStore %.2f%% (paper <8.18%% — %s); "
                "PTStore-only %.2f%% (paper <0.86%% — %s)\n",
                worst_cfi, worst_cfi < 8.18 ? "OK" : "EXCEEDED", worst_pt,
                worst_pt < 0.86 ? "OK" : "EXCEEDED");
    return ok ? 0 : 1;
  }
};

// ---- Figure 7: Redis ----

class RedisWorkload : public MatrixWorkload {
 public:
  std::string name() const override { return "redis"; }
  std::string title() const override {
    return "Figure 7 — Redis overheads (" + std::to_string(requests()) +
           " requests per test, 50 parallel connections)\n"
           "Paper: kernel-bound CFI+PTStore <8.18%; PTStore-only <0.86%.";
  }

 protected:
  static u64 requests() { return scaled(100000, 6000); }

  std::vector<MatrixCase> cases() override {
    std::vector<MatrixCase> out;
    const u64 req = requests();
    for (const RedisCase& c : redis_cases()) {
      out.push_back({c.name, MiB(512),
                     [c, req](System& sys) { run_redis(sys, c, req, 50); }});
    }
    return out;
  }

  int check(const std::vector<Measurement>& rows) override {
    double worst_pt = 0, sum_cfi = 0;
    for (const Measurement& m : rows) {
      worst_pt = std::max(worst_pt, m.ptstore_only_pct());
      sum_cfi += m.cfi_ptstore_pct();
    }
    const bool ok = worst_pt < 0.86;
    std::printf("\nAverage CFI+PTStore %.2f%%; worst PTStore-only %.2f%% "
                "(paper <0.86%% — %s)\n",
                sum_cfi / static_cast<double>(rows.size()), worst_pt,
                ok ? "OK" : "EXCEEDED");
    return ok ? 0 : 1;
  }
};

// ---- §V-D1: fork stress ----

class ForkStressWorkload : public MatrixWorkload {
 public:
  std::string name() const override { return "forkstress"; }
  std::string title() const override {
    return "Fork-stress (paper §V-D1) — " + std::to_string(procs()) +
           " simultaneous processes\n"
           "The only workload that triggers secure-region adjustments; the\n"
           "-Adj configuration avoids them with a 1 GiB region.";
  }

 protected:
  static u64 procs() { return scaled(30000, 30000); }

  std::vector<MatrixCase> cases() override {
    const u64 p = procs();
    return {{"fork-stress", GiB(1),
             [this, p](System& sys) {
               run_fork_stress(sys, p);
               const KernelConfig& kc = sys.kernel().config();
               if (kc.ptstore && kc.allow_adjustment) {
                 adjustments_ = sys.kernel().adjustments();
               }
             },
             /*include_noadj=*/true}};
  }

  int check(const std::vector<Measurement>& rows) override {
    const Measurement& m = rows.front();
    std::printf("\n%-22s %10s %10s\n", "configuration", "model %", "paper %");
    std::printf("%-22s %10.2f %10.2f\n", "CFI", m.cfi_pct(), 2.84);
    std::printf("%-22s %10.2f %10.2f\n", "CFI+PTStore", m.cfi_ptstore_pct(), 6.83);
    std::printf("%-22s %10.2f %10.2f\n", "CFI+PTStore-Adj", m.noadj_pct(), 3.77);
    std::printf("\nSecure-region adjustments triggered (CFI+PTStore): %llu\n",
                static_cast<unsigned long long>(adjustments_));
    std::printf("Adjustment contribution: %+.2f pp (paper: +%.2f pp)\n",
                m.cfi_ptstore_pct() - m.noadj_pct(), 6.83 - 3.77);
    // Shape: adjustments fire under CFI+PTStore and the -Adj configuration
    // lands between CFI and CFI+PTStore.
    return (adjustments_ > 0 && m.noadj_pct() < m.cfi_ptstore_pct()) ? 0 : 1;
  }

 private:
  u64 adjustments_ = 0;
};

}  // namespace

void register_figure_workloads(WorkloadRegistry& reg) {
  reg.add("lmbench", [] { return std::make_unique<LmbenchWorkload>(); });
  reg.add("spec", [] { return std::make_unique<SpecWorkload>(); });
  reg.add("nginx", [] { return std::make_unique<NginxWorkload>(); });
  reg.add("redis", [] { return std::make_unique<RedisWorkload>(); });
  reg.add("forkstress", [] { return std::make_unique<ForkStressWorkload>(); });
}

}  // namespace ptstore::workloads
