// SPEC CINT2006-shaped workloads (paper Fig. 5). SPEC is CPU-bound: almost
// all cycles are user-mode compute, and the CFI/PTStore deltas reach it only
// through kernel entries (startup demand-faults, steady-state faults from
// allocator churn, occasional syscalls, timer ticks). Each profile captures
// a benchmark's published footprint and kernel-interaction character;
// user compute is charged abstractly at the profile's CPI.
//
// 400.perlbench is excluded (fails to build for RISC-V — paper §V-D2); the
// FPU-less prototype runs the integer suite only.
#pragma once

#include "workloads/runner.h"

namespace ptstore::workloads {

struct SpecProfile {
  std::string name;
  double user_cpi = 1.2;        ///< Average user CPI (cache behaviour).
  u64 footprint_pages = 1000;   ///< Startup working set (demand-faulted).
  double faults_per_minstr = 2; ///< Steady-state page faults / M instrs.
  double sys_per_minstr = 0.5;  ///< Syscalls / M instrs.
};

/// The 11 CINT2006 benchmarks the paper runs.
std::vector<SpecProfile> spec_cint2006();

/// Run one profile for `minstr` million user instructions.
void run_spec(System& sys, const SpecProfile& prof, u64 minstr);

}  // namespace ptstore::workloads
