#include "workloads/lmbench.h"

#include "mmu/pte.h"

namespace ptstore::workloads {

namespace {

/// User-side loop body around each measured operation (lmbench's timing
/// harness: counter update, branch, function call).
constexpr u64 kLoopInstrs = 40;

void loop_overhead(System& sys) {
  sys.core().retire_abstract(kLoopInstrs, sys.core().config().timing.base_cpi);
}

/// Simple syscall-in-a-loop test body.
std::function<void(System&, u64)> sys_loop(Sys s) {
  return [s](System& sys, u64 iters) {
    Process& p = sys.init();
    for (u64 i = 0; i < iters; ++i) {
      loop_overhead(sys);
      sys.kernel().syscall(p, s);
    }
  };
}

constexpr VirtAddr kArena = kUserSpaceBase + GiB(8);

}  // namespace

std::vector<MicroTest> lmbench_suite() {
  std::vector<MicroTest> tests;
  tests.push_back({"null", sys_loop(Sys::kNull)});
  tests.push_back({"read", sys_loop(Sys::kRead)});
  tests.push_back({"write", sys_loop(Sys::kWrite)});
  tests.push_back({"stat", sys_loop(Sys::kStat)});
  tests.push_back({"fstat", sys_loop(Sys::kFstat)});
  tests.push_back({"open/close", sys_loop(Sys::kOpenClose)});
  tests.push_back({"select", sys_loop(Sys::kSelect)});
  tests.push_back({"sig inst", sys_loop(Sys::kSigInstall)});
  tests.push_back({"sig hndl", sys_loop(Sys::kSigHandle)});
  tests.push_back({"pipe", sys_loop(Sys::kPipe)});

  tests.push_back({"fork+exit", sys_loop(Sys::kFork)});
  tests.push_back({"fork+execve", sys_loop(Sys::kForkExec)});
  tests.push_back({"mmap", sys_loop(Sys::kMmap)});

  // Page fault: touch a never-before-seen page each iteration.
  tests.push_back({"page fault", [](System& sys, u64 iters) {
    Kernel& k = sys.kernel();
    Process& p = sys.init();
    const u64 chunk = 256;  // Pages per VMA before recycling it.
    for (u64 i = 0; i < iters; i += chunk) {
      const u64 n = std::min<u64>(chunk, iters - i);
      if (!k.processes().add_vma(p, kArena, chunk * kPageSize, pte::kR | pte::kW)) {
        return;
      }
      for (u64 j = 0; j < n; ++j) {
        loop_overhead(sys);
        k.user_access(p, kArena + j * kPageSize, /*write=*/true);
      }
      k.processes().remove_vma(p, kArena, chunk * kPageSize);
    }
  }});

  // Protection fault: write to a read-only page (SIGSEGV path).
  tests.push_back({"prot fault", [](System& sys, u64 iters) {
    Kernel& k = sys.kernel();
    Process& p = sys.init();
    if (!k.processes().add_vma(p, kArena, kPageSize, pte::kR)) return;
    (void)k.user_access(p, kArena, /*write=*/false);  // Map it read-only.
    for (u64 i = 0; i < iters; ++i) {
      loop_overhead(sys);
      (void)k.user_access(p, kArena, /*write=*/true);  // Faults, kernel rejects.
    }
    k.processes().remove_vma(p, kArena, kPageSize);
  }});

  // Context switch between two processes (lat_ctx with 2 procs).
  tests.push_back({"ctx switch", [](System& sys, u64 iters) {
    Kernel& k = sys.kernel();
    Process* a = k.processes().fork(sys.init());
    Process* b = k.processes().fork(sys.init());
    if (a == nullptr || b == nullptr) return;
    for (u64 i = 0; i < iters; ++i) {
      loop_overhead(sys);
      k.processes().switch_to(*a);
      k.processes().switch_to(*b);
    }
    k.processes().exit(*a);
    k.processes().exit(*b);
    k.processes().switch_to(sys.init());
  }});

  return tests;
}

void run_micro(System& sys, const MicroTest& test, u64 iters) {
  test.body(sys, iters);
}

void run_fork_stress(System& sys, u64 procs) {
  Kernel& k = sys.kernel();
  std::vector<u64> pids;
  pids.reserve(procs);
  // Create all processes before reaping any — the paper's "30,000 processes
  // at the same time", sized to overflow a 64 MiB secure region and force
  // boundary adjustments.
  for (u64 i = 0; i < procs; ++i) {
    k.charge_trap_roundtrip();
    k.cfi_charge(syscall_cost(Sys::kFork).indirect_calls);
    k.core().retire_abstract(syscall_cost(Sys::kFork).body_instrs,
                             k.core().config().timing.base_cpi);
    Process* child = k.processes().fork(sys.init());
    if (child == nullptr) break;  // OOM under this configuration.
    pids.push_back(child->pid);
  }
  for (const u64 pid : pids) {
    Process* p = k.processes().find(pid);
    if (p != nullptr) k.processes().exit(*p);
  }
  k.processes().switch_to(sys.init());
}

}  // namespace ptstore::workloads
