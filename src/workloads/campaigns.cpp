// Campaign workloads: the randomized fleet campaigns of src/harness exposed
// through the workload registry, so any bench driver (and ptperf) can run
// them with the shared --jobs / --shards / --campaign-seed flags. One
// registered workload per campaign kind:
//
//   campaign_proto  — random kernel-protocol op sequences.
//   campaign_diff   — random instruction streams vs. the two-ISA oracle.
//   campaign_attack — protocol ops interleaved with attacker primitives.
//   campaign_smp    — protocol ops scattered across >= 2 harts, interleaved
//                     with cross-hart stale-TLB race probes (--harts).
//
// The run fails (non-zero exit) when any shard reports a violation; the
// footer prints the boot-amortization speedup from checkpoint forking.
#include <cstdio>
#include <memory>
#include <sstream>

#include "harness/campaign.h"
#include "workloads/runner.h"

namespace ptstore::workloads {

namespace {

using harness::CampaignKind;
using harness::CampaignResult;
using harness::CampaignSpec;

class CampaignWorkload : public Workload {
 public:
  explicit CampaignWorkload(CampaignKind kind) : kind_(kind) {}

  std::string name() const override {
    return std::string("campaign_") + harness::to_string(kind_);
  }

  std::string title() const override {
    const FleetOptions& f = fleet_options();
    std::ostringstream os;
    os << "Randomized " << harness::to_string(kind_) << " campaign: "
       << spec_shards(f) << " shards x " << spec_ops() << " ops, seed "
       << f.campaign_seed << ", jobs " << f.jobs;
    return os.str();
  }

  int run() override {
    const FleetOptions& f = fleet_options();
    CampaignSpec spec;
    spec.kind = kind_;
    spec.seed = f.campaign_seed;
    spec.shards = spec_shards(f);
    spec.jobs = f.jobs;
    spec.ops_per_shard = spec_ops();
    spec.diff.op_count = spec_ops();
    // SMP campaigns need a multi-hart machine; --harts can widen further.
    spec.nharts = kind_ == CampaignKind::kSmp ? std::max(2u, f.harts) : f.harts;

    const CampaignResult r = harness::run_campaign(spec);

    std::printf("%-8s %-20s %12s %s\n", "shard", "seed", "ops", "result");
    for (const auto& s : r.shards) {
      std::printf("%-8llu %-20llu %12llu %s\n",
                  static_cast<unsigned long long>(s.shard),
                  static_cast<unsigned long long>(s.seed),
                  static_cast<unsigned long long>(s.ops_executed),
                  s.failed ? s.failure.c_str() : "ok");
    }
    std::printf("\n%llu/%llu shards failed",
                static_cast<unsigned long long>(r.failures),
                static_cast<unsigned long long>(spec.shards));
    if (kind_ != CampaignKind::kDiff) {
      std::printf("; boot amortization %.1fx (boot %.3fs, forks %.3fs total)",
                  r.timing.boot_amortization(spec.shards),
                  r.timing.boot_seconds, r.timing.fork_seconds_total);
    }
    std::printf("\n");
    return r.failures == 0 ? 0 : 1;
  }

 private:
  u64 spec_shards(const FleetOptions& f) const {
    return smoke_mode() ? std::max<u64>(2, f.shards / 4) : f.shards;
  }
  u64 spec_ops() const { return scaled(256, 64); }

  CampaignKind kind_;
};

}  // namespace

void register_campaign_workloads(WorkloadRegistry& reg) {
  reg.add("campaign_proto",
          [] { return std::make_unique<CampaignWorkload>(CampaignKind::kProto); });
  reg.add("campaign_diff",
          [] { return std::make_unique<CampaignWorkload>(CampaignKind::kDiff); });
  reg.add("campaign_attack",
          [] { return std::make_unique<CampaignWorkload>(CampaignKind::kAttack); });
  reg.add("campaign_smp",
          [] { return std::make_unique<CampaignWorkload>(CampaignKind::kSmp); });
}

}  // namespace ptstore::workloads
