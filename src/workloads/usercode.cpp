#include "workloads/usercode.h"

#include "isa/assembler.h"
#include "telemetry/profile.h"

namespace ptstore::workloads {

namespace {

using isa::Assembler;
using isa::Reg;

// A self-contained xorshift-style mixing loop: straight-line ALU work plus
// one store/load pair per iteration, closed by a backward jump. Never
// exits — every slice is cut by the run_slice instruction budget.
//
// The loop body is entered by one `jal ra` from the prologue so it is a
// *function* under the link-register convention: the call-stack profiler
// names all user compute time "user_compute" instead of leaving it in the
// "[U]" pseudo-root. `fn_entry` returns the body's address for symbol
// registration.
std::vector<u32> compute_loop(VirtAddr entry, VirtAddr* fn_entry) {
  Assembler p(entry);
  p.li(Reg::kSp, GuestRunner::kStackTop - 256);
  const Assembler::Label fn = p.make_label();
  p.jal(Reg::kRa, fn);  // Never returns; slices are budget-cut.
  p.bind(fn);
  p.li(Reg::kT0, 0x9e3779b97f4a7c15);  // Mix state.
  p.li(Reg::kT1, 0);                   // Iteration counter.
  const Assembler::Label loop = p.make_label();
  p.bind(loop);
  p.addi(Reg::kT1, Reg::kT1, 1);
  p.xor_(Reg::kT0, Reg::kT0, Reg::kT1);
  p.slli(Reg::kT2, Reg::kT0, 7);
  p.add(Reg::kT0, Reg::kT0, Reg::kT2);
  p.srli(Reg::kT2, Reg::kT0, 9);
  p.xor_(Reg::kT0, Reg::kT0, Reg::kT2);
  p.sd(Reg::kT0, Reg::kSp, 0);
  p.ld(Reg::kT3, Reg::kSp, 0);
  p.add(Reg::kT0, Reg::kT0, Reg::kT3);
  p.jal(Reg::kZero, loop);
  std::vector<u32> words = p.finish();
  if (fn_entry != nullptr) *fn_entry = *p.label_address(fn);
  return words;
}

}  // namespace

u64 UserCompute::run(Process& proc, u64 budget) {
  if (budget == 0) return 0;
  if (loaded_.count(proc.pid) == 0) {
    VirtAddr fn_entry = 0;
    if (!runner_.load_program(proc, kEntry, compute_loop(kEntry, &fn_entry))) {
      return 0;
    }
    if (telemetry::Profiler* pf = telemetry::profiling()) {
      pf->add_symbol(fn_entry, "user_compute");
    }
    loaded_.insert(proc.pid);
  }
  const GuestResult r = runner_.run_slice(proc, kEntry, budget);
  // The loop neither exits nor faults; `instructions` is guest retirement
  // plus the modelled handling of its (rare) demand faults.
  return r.instructions;
}

}  // namespace ptstore::workloads
