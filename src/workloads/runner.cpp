#include "workloads/runner.h"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "telemetry/trace_export.h"

namespace ptstore::workloads {

// Defined in figures.cpp / campaigns.cpp. Called from the registry accessor
// so those workloads are linked and registered even though no bench
// references their symbols directly (static initializers in an unreferenced
// archive member would be dropped).
void register_figure_workloads(WorkloadRegistry& reg);
void register_campaign_workloads(WorkloadRegistry& reg);

namespace {

u64 g_instructions = 0;

FleetOptions g_fleet;

std::optional<BackendKind> g_backend;

bool env_is(const char* name, char value) {
  const char* e = std::getenv(name);
  return e != nullptr && e[0] == value;
}

/// Process-wide report collector (see collect_report() in runner.h).
struct Collector {
  bool enabled = false;
  int focus_rank = -1;  ///< -1 until the first run is captured.
  std::map<std::string, u64> counters;
  std::map<Sys, Histogram> latency;
  std::vector<Measurement> rows;
  std::vector<std::pair<std::string, std::string>> extra_config;
};

Collector g_collector;

/// Higher rank = better representative of "the PTStore machine under test".
int config_rank(const char* label, const SystemConfig& cfg) {
  if (std::string_view(label) == "cfi_ptstore") return 2;
  return cfg.kernel.ptstore ? 1 : 0;
}

void capture_run(const char* label, System& s) {
  const int rank = config_rank(label, s.config());
  if (rank < g_collector.focus_rank) return;
  if (rank > g_collector.focus_rank) {
    g_collector.focus_rank = rank;
    g_collector.counters.clear();
    g_collector.latency.clear();
  }
  // Latest counter snapshot wins; latency distributions accumulate so a
  // bench that builds many same-rank machines reports over all of them.
  g_collector.counters = s.report().counters();
  for (const auto& [sys, hist] : s.kernel().syscall_latency()) {
    g_collector.latency[sys].merge(hist);
  }
}

}  // namespace

bool smoke_mode() { return env_is("PTSTORE_SMOKE", '1'); }

bool decode_cache_enabled() { return !env_is("PTSTORE_BBCACHE", '0'); }

u64 instructions_simulated() { return g_instructions; }

const FleetOptions& fleet_options() { return g_fleet; }

void set_fleet_options(const FleetOptions& opts) { g_fleet = opts; }

std::optional<BackendKind> backend_override() { return g_backend; }

void set_backend_override(std::optional<BackendKind> k) { g_backend = k; }

Cycles run_on(SystemConfig cfg, const WorkloadFn& fn, const char* config_label) {
  cfg.core.decode_cache = decode_cache_enabled();
  // Only touched when --harts asked for an SMP machine: the workloads run
  // on hart 0 either way, but secondary harts change boot work and L2
  // sharing, which is exactly what the 1-vs-2-hart bench columns measure.
  if (g_fleet.harts > 1) cfg.nharts = g_fleet.harts;
  // Retarget only the defended configuration at the requested backend: the
  // base/cfi reference machines must stay undefended for the overhead
  // columns to mean anything.
  if (g_backend && cfg.kernel.ptstore) apply_backend(cfg, *g_backend);
  auto sys = System::create(cfg);
  if (!sys) {
    std::fprintf(stderr, "bench configuration rejected: %s\n",
                 sys.error().c_str());
    std::abort();
  }
  System& s = *sys.value();
  if (g_collector.enabled) s.kernel().enable_latency_collection(true);
  const Cycles before = s.cycles();
  const u64 instret_before = s.core().instret();
  // Boot-time events stay outside the session: attribution covers exactly
  // the measured interval, so the profile total matches the cycle delta.
  telemetry::EventRing* tr = telemetry::tracing();
  telemetry::Profiler* pf = telemetry::profiling();
  if (tr != nullptr) tr->session_begin(before);
  if (pf != nullptr) {
    pf->session_begin(config_label[0] != '\0' ? config_label : "run", before,
                      static_cast<u8>(s.core().priv()));
  }
  fn(s);
  if (pf != nullptr) pf->session_end(s.cycles());
  if (tr != nullptr) tr->session_end(s.cycles());
  g_instructions += s.core().instret() - instret_before;
  if (g_collector.enabled) capture_run(config_label, s);
  return s.cycles() - before;
}

Measurement measure(const std::string& name, u64 dram_size, const WorkloadFn& fn,
                    bool include_noadj) {
  Measurement m;
  m.name = name;

  auto run_one = [&](SystemConfig cfg, const char* label) {
    cfg.dram_size = dram_size;
    return run_on(cfg, fn, label);
  };

  m.base = run_one(SystemConfig::baseline(), "base");
  m.cfi = run_one(SystemConfig::cfi(), "cfi");
  m.cfi_ptstore = run_one(SystemConfig::cfi_ptstore(), "cfi_ptstore");
  if (include_noadj) {
    SystemConfig cfg = SystemConfig::cfi_ptstore_noadj();
    cfg.kernel.secure_region_init = std::min<u64>(GiB(1), dram_size / 2);
    m.cfi_ptstore_noadj = run_one(cfg, "cfi_ptstore_noadj");
  }
  return m;
}

u64 scaled(u64 paper_count, u64 def) {
  if (smoke_mode()) return std::max<u64>(1, def / 16);
  if (env_is("PTSTORE_FULL", '1')) return paper_count;
  return def;
}

int MatrixWorkload::run() {
  row_header();
  std::vector<Measurement> rows;
  for (const MatrixCase& c : cases()) {
    rows.push_back(measure(c.name, c.dram_size, c.fn, c.include_noadj));
    print_row(rows.back());
    if (g_collector.enabled) g_collector.rows.push_back(rows.back());
  }
  return check(rows);
}

void collect_report(bool on) {
  g_collector = Collector{};
  g_collector.enabled = on;
}

void report_add_row(const Measurement& m) {
  if (g_collector.enabled) g_collector.rows.push_back(m);
}

void report_add_config(const std::string& key, const std::string& value) {
  if (g_collector.enabled) g_collector.extra_config.emplace_back(key, value);
}

telemetry::BenchReport build_report(const std::string& workload) {
  telemetry::BenchReport rep;
  rep.workload = workload;
  rep.config.emplace_back("smoke", smoke_mode() ? "1" : "0");
  rep.config.emplace_back("decode_cache", decode_cache_enabled() ? "on" : "off");
  rep.config.emplace_back("scale", smoke_mode() ? "smoke"
                          : env_is("PTSTORE_FULL", '1') ? "paper"
                                                        : "default");
  if (g_backend) rep.config.emplace_back("backend", to_string(*g_backend));
  // Conditional like "backend": absent at the 1-hart default so historical
  // reports stay byte-identical.
  if (g_fleet.harts > 1)
    rep.config.emplace_back("harts", std::to_string(g_fleet.harts));
  for (const auto& kv : g_collector.extra_config) rep.config.push_back(kv);
  for (const Measurement& m : g_collector.rows) {
    telemetry::BenchReport::Row row;
    row.name = m.name;
    row.base_cycles = m.base;
    row.cfi_cycles = m.cfi;
    row.cfi_ptstore_cycles = m.cfi_ptstore;
    row.cfi_ptstore_noadj_cycles = m.cfi_ptstore_noadj;
    row.cfi_pct = m.cfi_pct();
    row.cfi_ptstore_pct = m.cfi_ptstore_pct();
    row.ptstore_only_pct = m.ptstore_only_pct();
    rep.measurements.push_back(std::move(row));
  }
  rep.counters = g_collector.counters;
  // Truncated traces/profiles are self-announcing: when the observers are
  // active, their loss counters ride along in the report.
  if (telemetry::EventRing* tr = telemetry::tracing()) {
    telemetry::MetricsRegistry::instance().intern(
        "telemetry.trace_dropped",
        "trace events lost to EventRing capacity (0 = complete trace)",
        "events");
    rep.counters["telemetry.trace_dropped"] = tr->dropped();
  }
  if (telemetry::Profiler* pf = telemetry::profiling()) {
    telemetry::MetricsRegistry::instance().intern(
        "telemetry.profile_truncated",
        "profile frames dropped at the shadow-stack depth cap", "frames");
    rep.counters["telemetry.profile_truncated"] = pf->truncated_frames();
  }
  for (const auto& [sys, hist] : g_collector.latency) {
    telemetry::HistogramSummary s;
    s.count = hist.count();
    s.mean = hist.mean();
    s.min = hist.min();
    s.max = hist.max();
    s.p50 = hist.percentile(50);
    s.p90 = hist.percentile(90);
    s.p99 = hist.percentile(99);
    rep.histograms[std::string("syscall.") + to_string(sys)] = s;
  }
  return rep;
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry reg = [] {
    WorkloadRegistry r;
    register_figure_workloads(r);
    register_campaign_workloads(r);
    return r;
  }();
  return reg;
}

void WorkloadRegistry::add(const std::string& name, WorkloadFactory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<Workload> WorkloadRegistry::make(const std::string& name) const {
  const auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second();
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

int run_workload_main_with(std::unique_ptr<Workload> w, int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  std::string profile_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      setenv("PTSTORE_SMOKE", "1", 1);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile_path = arg.substr(10);
    } else if (arg == "--jobs" && i + 1 < argc) {
      g_fleet.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else if (arg == "--shards" && i + 1 < argc) {
      g_fleet.shards = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--campaign-seed" && i + 1 < argc) {
      g_fleet.campaign_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--harts" && i + 1 < argc) {
      g_fleet.harts = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
      if (g_fleet.harts < 1 || g_fleet.harts > 8) {
        std::fprintf(stderr, "--harts must be 1..8\n");
        return 2;
      }
    } else if (arg == "--backend" && i + 1 < argc) {
      const auto kind = backend_kind_from(argv[++i]);
      if (!kind) {
        std::fprintf(stderr, "unknown backend '%s' (stock|ptstore|dpti|ptauth)\n",
                     argv[i]);
        return 2;
      }
      set_backend_override(*kind);
    } else if (arg.rfind("--backend=", 0) == 0) {
      const auto kind = backend_kind_from(arg.substr(10));
      if (!kind) {
        std::fprintf(stderr, "unknown backend '%s' (stock|ptstore|dpti|ptauth)\n",
                     arg.substr(10).c_str());
        return 2;
      }
      set_backend_override(*kind);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json <path>] [--trace <path>] "
                   "[--profile <path>] [--jobs N] [--shards N] "
                   "[--campaign-seed N] [--harts N] [--backend NAME]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!json_path.empty()) collect_report(true);
  if (!trace_path.empty()) telemetry::enable_tracing();
  if (!profile_path.empty()) telemetry::enable_profiling();

  header(w->title());
  const auto t0 = std::chrono::steady_clock::now();
  const int rc = w->run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double minst = static_cast<double>(instructions_simulated()) / 1e6;
  std::printf("\n[%s] wall %.2f s, %.1f Minst simulated (%.1f Minst/s), "
              "decode cache %s%s\n",
              w->name().c_str(), secs, minst,
              secs > 0 ? minst / secs : 0.0,
              decode_cache_enabled() ? "on" : "off",
              smoke_mode() ? ", smoke scale" : "");

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 2;
    }
    telemetry::write_bench_report(os, build_report(w->name()));
    std::printf("[%s] JSON report -> %s\n", w->name().c_str(),
                json_path.c_str());
    collect_report(false);
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
      return 2;
    }
    telemetry::write_chrome_trace(os, *telemetry::tracing());
    std::printf("[%s] Chrome trace -> %s\n", w->name().c_str(),
                trace_path.c_str());
    telemetry::disable_tracing();
  }
  if (!profile_path.empty()) {
    std::ofstream os(profile_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", profile_path.c_str());
      return 2;
    }
    telemetry::write_profile_json(os, telemetry::profiling()->snapshot());
    std::printf("[%s] call-stack profile -> %s (render: ptprof flame %s)\n",
                w->name().c_str(), profile_path.c_str(), profile_path.c_str());
    telemetry::disable_profiling();
  }

  // Smoke runs exist to prove the bench builds and executes (briefly, e.g.
  // under sanitizers); at 1/16 scale the shape checks are noise.
  return smoke_mode() ? 0 : rc;
}

int run_workload_main(const std::string& name, int argc, char** argv) {
  std::unique_ptr<Workload> w = WorkloadRegistry::instance().make(name);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; registered:", name.c_str());
    for (const std::string& n : WorkloadRegistry::instance().names()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  return run_workload_main_with(std::move(w), argc, argv);
}

}  // namespace ptstore::workloads
