#include "workloads/runner.h"

#include <cstdlib>

namespace ptstore::workloads {

Measurement measure(const std::string& name, u64 dram_size, const WorkloadFn& fn,
                    bool include_noadj) {
  Measurement m;
  m.name = name;

  auto run_one = [&](SystemConfig cfg) {
    cfg.dram_size = dram_size;
    System sys(cfg);
    const Cycles before = sys.cycles();
    fn(sys);
    return sys.cycles() - before;
  };

  m.base = run_one(SystemConfig::baseline());
  m.cfi = run_one(SystemConfig::cfi());
  m.cfi_ptstore = run_one(SystemConfig::cfi_ptstore());
  if (include_noadj) {
    SystemConfig cfg = SystemConfig::cfi_ptstore_noadj();
    cfg.dram_size = dram_size;
    cfg.kernel.secure_region_init = std::min<u64>(GiB(1), dram_size / 2);
    System sys(cfg);
    const Cycles before = sys.cycles();
    fn(sys);
    m.cfi_ptstore_noadj = sys.cycles() - before;
  }
  return m;
}

u64 scaled(u64 paper_count, u64 def) {
  if (const char* env = std::getenv("PTSTORE_FULL"); env != nullptr && env[0] == '1') {
    return paper_count;
  }
  return def;
}

}  // namespace ptstore::workloads
