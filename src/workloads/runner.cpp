#include "workloads/runner.h"

#include <chrono>
#include <cstdlib>

namespace ptstore::workloads {

// Defined in figures.cpp. Called from the registry accessor so the figure
// workloads are linked and registered even though no bench references
// figures.cpp symbols directly (static initializers in an unreferenced
// archive member would be dropped).
void register_figure_workloads(WorkloadRegistry& reg);

namespace {

u64 g_instructions = 0;

bool env_is(const char* name, char value) {
  const char* e = std::getenv(name);
  return e != nullptr && e[0] == value;
}

}  // namespace

bool smoke_mode() { return env_is("PTSTORE_SMOKE", '1'); }

bool decode_cache_enabled() { return !env_is("PTSTORE_BBCACHE", '0'); }

u64 instructions_simulated() { return g_instructions; }

Cycles run_on(SystemConfig cfg, const WorkloadFn& fn) {
  cfg.core.decode_cache = decode_cache_enabled();
  auto sys = System::create(cfg);
  if (!sys) {
    std::fprintf(stderr, "bench configuration rejected: %s\n",
                 sys.error().c_str());
    std::abort();
  }
  System& s = *sys.value();
  const Cycles before = s.cycles();
  const u64 instret_before = s.core().instret();
  fn(s);
  g_instructions += s.core().instret() - instret_before;
  return s.cycles() - before;
}

Measurement measure(const std::string& name, u64 dram_size, const WorkloadFn& fn,
                    bool include_noadj) {
  Measurement m;
  m.name = name;

  auto run_one = [&](SystemConfig cfg) {
    cfg.dram_size = dram_size;
    return run_on(cfg, fn);
  };

  m.base = run_one(SystemConfig::baseline());
  m.cfi = run_one(SystemConfig::cfi());
  m.cfi_ptstore = run_one(SystemConfig::cfi_ptstore());
  if (include_noadj) {
    SystemConfig cfg = SystemConfig::cfi_ptstore_noadj();
    cfg.kernel.secure_region_init = std::min<u64>(GiB(1), dram_size / 2);
    m.cfi_ptstore_noadj = run_one(cfg);
  }
  return m;
}

u64 scaled(u64 paper_count, u64 def) {
  if (smoke_mode()) return std::max<u64>(1, def / 16);
  if (env_is("PTSTORE_FULL", '1')) return paper_count;
  return def;
}

int MatrixWorkload::run() {
  row_header();
  std::vector<Measurement> rows;
  for (const MatrixCase& c : cases()) {
    rows.push_back(measure(c.name, c.dram_size, c.fn, c.include_noadj));
    print_row(rows.back());
  }
  return check(rows);
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry reg = [] {
    WorkloadRegistry r;
    register_figure_workloads(r);
    return r;
  }();
  return reg;
}

void WorkloadRegistry::add(const std::string& name, WorkloadFactory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<Workload> WorkloadRegistry::make(const std::string& name) const {
  const auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second();
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

int run_workload_main_with(std::unique_ptr<Workload> w, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      setenv("PTSTORE_SMOKE", "1", 1);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  header(w->title());
  const auto t0 = std::chrono::steady_clock::now();
  const int rc = w->run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double minst = static_cast<double>(instructions_simulated()) / 1e6;
  std::printf("\n[%s] wall %.2f s, %.1f Minst simulated (%.1f Minst/s), "
              "decode cache %s%s\n",
              w->name().c_str(), secs, minst,
              secs > 0 ? minst / secs : 0.0,
              decode_cache_enabled() ? "on" : "off",
              smoke_mode() ? ", smoke scale" : "");
  // Smoke runs exist to prove the bench builds and executes (briefly, e.g.
  // under sanitizers); at 1/16 scale the shape checks are noise.
  return smoke_mode() ? 0 : rc;
}

int run_workload_main(const std::string& name, int argc, char** argv) {
  std::unique_ptr<Workload> w = WorkloadRegistry::instance().make(name);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; registered:", name.c_str());
    for (const std::string& n : WorkloadRegistry::instance().names()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  return run_workload_main_with(std::move(w), argc, argv);
}

}  // namespace ptstore::workloads
