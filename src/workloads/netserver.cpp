#include "workloads/netserver.h"

#include <algorithm>

#include "mmu/pte.h"
#include "workloads/usercode.h"

namespace ptstore::workloads {

namespace {
constexpr VirtAddr kBufArena = kUserSpaceBase + GiB(40);
constexpr unsigned kNginxWorkers = 4;
// Real U-mode instructions per served request (the rest of the user-side
// cost stays abstract; see usercode.h).
constexpr u64 kNginxRealPerRequest = 1'500;
constexpr u64 kRedisRealPerRequest = 1'000;
}  // namespace

std::vector<NginxCase> nginx_cases() {
  return {
      {"1KB", KiB(1), false},
      {"10KB", KiB(10), false},
      {"100KB", KiB(100), false},
      {"1KB keepalive", KiB(1), true},
  };
}

void run_nginx(System& sys, const NginxCase& c, u64 requests, unsigned concurrency) {
  Kernel& k = sys.kernel();
  TickModel tick;
  tick.reset(k);

  // Master forks the worker pool; each worker maps its I/O buffers.
  std::vector<Process*> workers;
  for (unsigned w = 0; w < kNginxWorkers; ++w) {
    Process* p = k.processes().fork(sys.init());
    if (p == nullptr) return;
    k.processes().switch_to(*p);
    const VirtAddr buf = kBufArena + w * MiB(2);
    if (!k.processes().add_vma(*p, buf, 64 * kPageSize, pte::kR | pte::kW)) return;
    for (u64 i = 0; i < 16; ++i) k.user_access(*p, buf + i * kPageSize, true);
    workers.push_back(p);
  }

  // With `concurrency` connections multiplexed over 4 workers, consecutive
  // requests land on different workers: a context switch per request.
  (void)concurrency;
  UserCompute uc(sys);
  for (u64 r = 0; r < requests; ++r) {
    Process& w = *workers[r % workers.size()];
    k.processes().switch_to(w);

    if (!c.keepalive || (r & 63) == 0) k.syscall(w, Sys::kAcceptClose);
    k.syscall(w, Sys::kRead);   // Request headers.
    k.syscall(w, Sys::kStat);   // Path lookup.
    k.syscall(w, Sys::kOpenClose);

    // Response: parse + build headers (user; partly real U-mode code in the
    // worker's own address space), then write the body out in 8 KiB chunks
    // (sendfile-style loop).
    const u64 real = std::min<u64>(uc.run(w, kNginxRealPerRequest), 5'000);
    sys.core().retire_abstract(6'000 - real, sys.core().config().timing.base_cpi);
    const u64 chunks = (c.file_bytes + KiB(8) - 1) / KiB(8);
    for (u64 ch = 0; ch < chunks; ++ch) {
      k.syscall(w, Sys::kSendRecv);
      sys.core().retire_abstract(1'600, sys.core().config().timing.base_cpi);
    }
    k.syscall(w, Sys::kWrite);  // Access log.

    const VirtAddr buf = kBufArena + (r % workers.size()) * MiB(2);
    k.user_access(w, buf + (r % 16) * kPageSize, /*write=*/true);
    tick.advance(k);
  }

  for (Process* w : workers) k.processes().exit(*w);
  k.processes().switch_to(sys.init());
}

std::vector<RedisCase> redis_cases() {
  // Server-side costs scale with command complexity; LRANGE and MSET are
  // the heavyweights, PING the floor — matching redis-benchmark's spread.
  return {
      {"PING_INLINE", 2'100, false},
      {"PING_MBULK", 2'400, false},
      {"SET", 3'500, true},
      {"GET", 3'000, false},
      {"INCR", 3'200, true},
      {"LPUSH", 4'200, true},
      {"RPUSH", 4'200, true},
      {"LPOP", 4'000, false},
      {"RPOP", 4'000, false},
      {"SADD", 4'500, true},
      {"HSET", 4'800, true},
      {"SPOP", 4'300, false},
      {"ZADD", 5'800, true},
      {"ZPOPMIN", 5'500, false},
      {"LRANGE_100", 22'000, false},
      {"MSET (10 keys)", 15'000, true},
  };
}

void run_redis(System& sys, const RedisCase& c, u64 requests, unsigned connections) {
  Kernel& k = sys.kernel();
  Process& srv = sys.init();
  TickModel tick;
  tick.reset(k);
  (void)connections;  // Single-threaded server: connections affect batching only.

  // Data heap, grown as write commands allocate.
  const u64 heap_pages = 4096;
  if (!k.processes().add_vma(srv, kBufArena, heap_pages * kPageSize,
                             pte::kR | pte::kW)) {
    return;
  }
  u64 heap_touched = 0;
  UserCompute uc(sys);

  for (u64 r = 0; r < requests; ++r) {
    k.syscall(srv, Sys::kSendRecv);  // Read command + write reply.
    const u64 real = std::min<u64>(uc.run(srv, kRedisRealPerRequest), c.user_instrs);
    sys.core().retire_abstract(c.user_instrs - real,
                               sys.core().config().timing.base_cpi);

    if (c.allocates) {
      // Amortized allocator growth: a fresh heap page every 32 writes.
      if ((r & 31) == 0 && heap_touched < heap_pages) {
        k.user_access(srv, kBufArena + heap_touched * kPageSize, true);
        ++heap_touched;
      }
      if ((r & 1023) == 0) k.syscall(srv, Sys::kBrk);
    } else {
      // Reads touch existing data.
      if (heap_touched != 0) {
        k.user_access(srv, kBufArena + (r % heap_touched) * kPageSize, false);
      }
    }
    tick.advance(k);
  }
  k.processes().remove_vma(srv, kBufArena, heap_pages * kPageSize);
}

}  // namespace ptstore::workloads
