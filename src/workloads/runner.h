// Shared workload infrastructure: the four evaluation configurations of the
// paper, periodic-timer accounting, and overhead arithmetic used by every
// bench binary.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernel/system.h"

namespace ptstore::workloads {

/// Relative overhead in percent of `v` versus `base`.
inline double overhead_pct(Cycles v, Cycles base) {
  return base == 0 ? 0.0
                   : 100.0 * (static_cast<double>(v) - static_cast<double>(base)) /
                         static_cast<double>(base);
}

/// Periodic timer-interrupt model: CPU-bound workloads still enter the
/// kernel on every tick, which is where kernel CFI costs reach them.
struct TickModel {
  Cycles period = 900'000;  ///< 10 ms at the prototype's 90 MHz.
  u64 handler_instrs = 400;
  u64 indirect_calls = 8;
  Cycles last = 0;

  void reset(Kernel& k) { last = k.core().cycles(); }

  /// Charge any ticks that elapsed since the last call.
  void advance(Kernel& k) {
    Core& core = k.core();
    while (core.cycles() - last >= period) {
      last += period;
      k.charge_trap_roundtrip();
      core.retire_abstract(handler_instrs, core.config().timing.base_cpi);
      k.cfi_charge(indirect_calls);
    }
  }
};

/// One measured data point across the paper's configurations.
struct Measurement {
  std::string name;
  Cycles base = 0;          ///< No CFI, no PTStore.
  Cycles cfi = 0;           ///< Clang CFI only.
  Cycles cfi_ptstore = 0;   ///< CFI + PTStore (64 MiB adjustable region).
  Cycles cfi_ptstore_noadj = 0;  ///< Optional -Adj configuration (0 = unused).

  double cfi_pct() const { return overhead_pct(cfi, base); }
  double cfi_ptstore_pct() const { return overhead_pct(cfi_ptstore, base); }
  double ptstore_only_pct() const { return overhead_pct(cfi_ptstore, cfi); }
  double noadj_pct() const { return overhead_pct(cfi_ptstore_noadj, base); }
};

/// A workload body: runs against a booted system and returns nothing; the
/// caller measures the cycle delta.
using WorkloadFn = std::function<void(System&)>;

/// Run `fn` on a fresh system per configuration and collect the cycle
/// deltas. When `include_noadj` is set the -Adj configuration runs too.
Measurement measure(const std::string& name, u64 dram_size, const WorkloadFn& fn,
                    bool include_noadj = false);

/// Environment-scalable iteration count: `PTSTORE_SCALE` divides paper-scale
/// counts (default scale honours `def`).
u64 scaled(u64 paper_count, u64 def);

}  // namespace ptstore::workloads
