// Shared workload infrastructure: the four evaluation configurations of the
// paper, periodic-timer accounting, overhead arithmetic, and the Workload
// interface + registry behind every bench binary.
//
// A bench executable is one of:
//   int main(int argc, char** argv) {
//     return ptstore::workloads::run_workload_main("spec", argc, argv);
//   }
// for the figure-reproduction matrix workloads registered in figures.cpp, or
//   return run_workload_main_with(std::make_unique<MyBench>(), argc, argv);
// for freeform benches. The driver owns flag parsing (--smoke, --json,
// --trace), the banner, and the wall-clock / simulated-instruction
// throughput footer.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernel/system.h"
#include "telemetry/report.h"

namespace ptstore::workloads {

/// Relative overhead in percent of `v` versus `base`.
inline double overhead_pct(Cycles v, Cycles base) {
  return base == 0 ? 0.0
                   : 100.0 * (static_cast<double>(v) - static_cast<double>(base)) /
                         static_cast<double>(base);
}

/// Periodic timer-interrupt model: CPU-bound workloads still enter the
/// kernel on every tick, which is where kernel CFI costs reach them.
struct TickModel {
  Cycles period = 900'000;  ///< 10 ms at the prototype's 90 MHz.
  u64 handler_instrs = 400;
  u64 indirect_calls = 8;
  Cycles last = 0;

  void reset(Kernel& k) { last = k.core().cycles(); }

  /// Charge any ticks that elapsed since the last call.
  void advance(Kernel& k) {
    Core& core = k.core();
    while (core.cycles() - last >= period) {
      last += period;
      k.charge_trap_roundtrip();
      core.retire_abstract(handler_instrs, core.config().timing.base_cpi);
      k.cfi_charge(indirect_calls);
    }
  }
};

/// One measured data point across the paper's configurations.
struct Measurement {
  std::string name;
  Cycles base = 0;          ///< No CFI, no PTStore.
  Cycles cfi = 0;           ///< Clang CFI only.
  Cycles cfi_ptstore = 0;   ///< CFI + PTStore (64 MiB adjustable region).
  Cycles cfi_ptstore_noadj = 0;  ///< Optional -Adj configuration (0 = unused).

  double cfi_pct() const { return overhead_pct(cfi, base); }
  double cfi_ptstore_pct() const { return overhead_pct(cfi_ptstore, base); }
  double ptstore_only_pct() const { return overhead_pct(cfi_ptstore, cfi); }
  double noadj_pct() const { return overhead_pct(cfi_ptstore_noadj, base); }
};

/// A workload body: runs against a booted system and returns nothing; the
/// caller measures the cycle delta.
using WorkloadFn = std::function<void(System&)>;

/// Build a system from `cfg` via System::create (decode cache per
/// PTSTORE_BBCACHE), run `fn`, and return the cycle delta. Config errors
/// print every bad field and abort — a bench with a broken config is a
/// programming error, not a measurement.
///
/// `config_label` names the paper configuration being run ("base", "cfi",
/// "cfi_ptstore", ...); the report collector uses it to pick which machine's
/// counters land in the JSON report. When tracing is enabled the run is
/// bracketed in an EventRing session so cycle attribution is per-machine.
Cycles run_on(SystemConfig cfg, const WorkloadFn& fn,
              const char* config_label = "");

/// Run `fn` on a fresh system per configuration and collect the cycle
/// deltas. When `include_noadj` is set the -Adj configuration runs too.
Measurement measure(const std::string& name, u64 dram_size, const WorkloadFn& fn,
                    bool include_noadj = false);

/// Environment-scalable iteration count: paper scale under PTSTORE_FULL=1,
/// `def` by default, and max(1, def/16) under PTSTORE_SMOKE=1 (the --smoke
/// flag) so sanitizer/CI runs finish quickly.
u64 scaled(u64 paper_count, u64 def);

/// True when PTSTORE_SMOKE=1: benches run at 1/16 scale and the driver
/// ignores shape-check verdicts (tiny scales are noisy), reporting only
/// build/run health.
bool smoke_mode();

/// True unless PTSTORE_BBCACHE=0: systems built by run_on()/measure() use
/// the decoded basic-block cache. The knob exists to A/B host throughput;
/// simulated cycles are bit-identical either way.
bool decode_cache_enabled();

/// Simulated instructions retired inside run_on()/measure() so far in this
/// process — the numerator of the driver's Minst/s footer.
u64 instructions_simulated();

// ---- Fleet / campaign knobs (the --jobs / --shards / --campaign-seed flags) ----

/// Sharding knobs the driver parses for fleet-backed workloads (the campaign
/// benches in campaigns.cpp). Plain benches ignore them.
struct FleetOptions {
  unsigned jobs = 1;      ///< Worker threads; 0 = one per hardware thread.
  u64 shards = 8;         ///< Independent machines in the campaign.
  u64 campaign_seed = 1;  ///< Per-shard seeds derive from this via shard_seed().
  /// Simulated harts per machine (the --harts flag). 1 keeps the historical
  /// single-hart machines; run_on() only touches its SystemConfig when >1,
  /// so default bench reports stay byte-identical.
  unsigned harts = 1;
};

/// The fleet options parsed from the current bench invocation.
const FleetOptions& fleet_options();

/// Override the process-wide fleet options (tests; the driver calls this
/// from flag parsing).
void set_fleet_options(const FleetOptions& opts);

// ---- Backend selection (the --backend= flag) ----

/// The isolation backend the driver was asked to measure, if any. run_on()
/// applies it to every *defended* configuration it builds (base/cfi rows
/// keep their undefended configs, so overhead columns stay comparable).
std::optional<BackendKind> backend_override();

/// Set/clear the process-wide backend override (the driver calls this from
/// --backend=; benches that sweep all backends themselves clear it).
void set_backend_override(std::optional<BackendKind> k);

// ---- Machine-readable reporting (the --json flag and ptperf) ----

/// Toggle the process-wide report collector. While on, every run_on():
/// enables per-syscall latency collection on its system, and snapshots the
/// focus machine's System::report() counters and latency histograms. The
/// focus machine is the best-ranked run seen so far: an explicit
/// "cfi_ptstore" label outranks any PTStore-enabled config, which outranks
/// everything else; equal-rank runs merge histograms and keep the latest
/// counter snapshot. MatrixWorkload additionally captures its measured rows.
/// Turning collection on resets previously collected state.
void collect_report(bool on);

/// Append a measured row to the report collector directly (no-op while
/// collection is off). For benches that build Measurements by hand instead
/// of through MatrixWorkload — e.g. the per-backend overhead experiment.
void report_add_row(const Measurement& m);

/// Attach an extra config key/value to the collected report (no-op while
/// collection is off). Experiment-level facts like attack outcomes land
/// here as "attack.<scenario>.<backend>" entries.
void report_add_config(const std::string& key, const std::string& value);

/// The data accumulated since collect_report(true), flattened into the
/// versioned BenchReport schema. `workload` fills the report's workload
/// field; standard config rows (smoke/decode_cache/scale) are included.
telemetry::BenchReport build_report(const std::string& workload);

// ---- Output formatting (shared by every bench binary) ----

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void row_header() {
  std::printf("%-18s %10s %14s %14s %12s\n", "benchmark", "CFI %", "CFI+PTStore %",
              "PTStore-only %", "base cycles");
}

inline void print_row(const Measurement& m) {
  std::printf("%-18s %10.2f %14.2f %14.2f %12llu\n", m.name.c_str(), m.cfi_pct(),
              m.cfi_ptstore_pct(), m.ptstore_only_pct(),
              static_cast<unsigned long long>(m.base));
}

// ---- The Workload interface ----

/// One bench: a name for the registry, a banner title, and a body whose
/// return value is the process exit code (shape-check verdict).
class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  /// Banner text; may embed runtime scale (called after flag parsing).
  virtual std::string title() const = 0;
  virtual int run() = 0;
};

/// One row of a configuration-matrix workload.
struct MatrixCase {
  std::string name;
  u64 dram_size = MiB(512);
  WorkloadFn fn;
  bool include_noadj = false;
};

/// A workload that is a list of measure() rows printed in the standard
/// table format, followed by a shape check over the collected rows. This is
/// the common driver loop the figure benches (Fig. 4-7, §V-D1) share.
class MatrixWorkload : public Workload {
 public:
  int run() final;

 protected:
  virtual std::vector<MatrixCase> cases() = 0;
  /// Shape check + workload-specific footer over the measured rows, in
  /// cases() order. Return 0 when the paper's bounds hold.
  virtual int check(const std::vector<Measurement>& rows) = 0;
};

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/// Name -> factory map for the registered workloads (figures.cpp).
class WorkloadRegistry {
 public:
  static WorkloadRegistry& instance();
  void add(const std::string& name, WorkloadFactory factory);
  /// nullptr when `name` is unknown.
  std::unique_ptr<Workload> make(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, WorkloadFactory> factories_;
};

/// Driver for a directly constructed workload: parse flags (--smoke sets
/// PTSTORE_SMOKE=1, --json <path> writes the machine-readable BenchReport,
/// --trace <path> writes a Chrome trace_event dump of the run, --jobs /
/// --shards / --campaign-seed fill fleet_options() for fleet-backed
/// workloads), print the banner, run, print the wall-clock +
/// simulated-throughput footer. Smoke runs always exit 0.
int run_workload_main_with(std::unique_ptr<Workload> w, int argc, char** argv);

/// Same driver for a registry-backed workload looked up by name.
int run_workload_main(const std::string& name, int argc, char** argv);

}  // namespace ptstore::workloads
