// Seeded-violation corpus: small attack-shaped guest images, each built to
// trip exactly one ptlint rule (plus one benign near-miss that must stay
// clean). The corpus is the verifier's regression anchor — ctest asserts
// ptlint flags every seeded violation and nothing else.
#pragma once

#include <string>
#include <vector>

#include "analysis/ptlint.h"

namespace ptstore::analysis {

/// Load address for corpus images (1 MiB into DRAM, far from any default
/// secure region, which sits at the top of memory).
inline constexpr u64 kCorpusBase = kDramBase + MiB(1);

struct CorpusEntry {
  std::string name;
  std::string description;
  Image image;
  bool expect_clean = false;       ///< The benign near-miss.
  DiagKind expected{};             ///< Expected violation kind otherwise.
};

/// Build the corpus against a secure region [sr_base, sr_end).
std::vector<CorpusEntry> violation_corpus(u64 sr_base, u64 sr_end);

/// Entry by name; nullptr when absent.
const CorpusEntry* find_entry(const std::vector<CorpusEntry>& corpus,
                              const std::string& name);

}  // namespace ptstore::analysis
