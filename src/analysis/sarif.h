// SARIF 2.1.0 export for ptlint and ptflow reports, so CI can upload
// findings to code scanning. One run per document; each diagnostic kind is a
// stable reporting rule (PTL001..PTL007 for the intra-procedural linter,
// PTF101..PTF107 for the interprocedural flow verifier); violations map to
// level "error", notes to "note". Results are deduplicated by
// (ruleId, instruction address) — a diagnostic reachable along several paths
// exports once — and every result carries the ruleIndex of its rule in the
// run's rules array. The analysed image is a binary artifact, so locations
// carry the artifact URI plus the instruction address in properties.pc
// (SARIF has no native "address" region for our purposes — startLine 1
// keeps viewers happy).
#pragma once

#include <string>
#include <vector>

#include "analysis/ptflow.h"
#include "analysis/ptlint.h"
#include "analysis/symexec/witness.h"

namespace ptstore::analysis {

/// Stable SARIF rule id for a diagnostic kind, e.g. "PTL003".
const char* sarif_rule_id(DiagKind k);
/// Stable SARIF rule id for a flow diagnostic kind, e.g. "PTF104".
const char* sarif_rule_id(FlowDiagKind k);

/// Render `rep` as a complete SARIF 2.1.0 document. `artifact_uri` names
/// the analysed image (file path or pseudo-URI like "corpus:r1_store").
///
/// `verdicts`, when non-null, must be parallel to rep.violations() order
/// (what symexec_lint/symexec_flow return); each violation result then
/// carries its ptsym refinement in properties (ptsymVerdict, ptsymDetail,
/// ptsymPaths, ptsymDepth, and ptsymWitnessSteps for witnessed ones).
/// Passing nullptr — or calling the two-argument form — produces a
/// byte-identical document to the pre-ptsym exporter.
std::string to_sarif(const LintReport& rep, const std::string& artifact_uri,
                     const std::vector<symexec::SymVerdict>* verdicts = nullptr);
std::string to_sarif(const FlowReport& rep, const std::string& artifact_uri,
                     const std::vector<symexec::SymVerdict>* verdicts = nullptr);

}  // namespace ptstore::analysis
