// ptlint: static verifier for PTStore's isolation invariants over guest
// machine code. A forward abstract interpretation (interval domain,
// analysis/absval.h) over the recovered CFG classifies every memory access
// against the secure region and checks the paper's software-side rules:
//
//   R1  Regular loads/stores/AMOs and instruction fetch must never target
//       the secure region — only ld.pt/sd.pt may (paper §III-C1).
//   R2  ld.pt/sd.pt effective addresses must stay provably inside the
//       secure region (a pt-access that can escape leaks the only
//       privileged window the design grants).
//   R3  Every satp write must be dominated by a call to a token-validation
//       routine (§III-C3) — modelled as a must-analysis flag set on return
//       from a symbol named in LintConfig::token_validate_symbols.
//   R4  Guest kernel code never programs PMP: pmpcfg/pmpaddr are owned by
//       the M-mode monitor (§IV-B); any write is a mis-scoped PMP access.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/absval.h"
#include "analysis/cfg.h"

namespace ptstore::analysis {

struct LintConfig {
  u64 sr_base = 0;
  u64 sr_end = 0;
  /// Symbols whose return marks the abstract state "token-validated" (R3).
  std::vector<std::string> token_validate_symbols = {"token_validate",
                                                     "validate_token"};
  /// Additional analysis roots (e.g. trap vectors) beyond the image base.
  std::vector<u64> extra_roots;
};

enum class AccessClass : u8 {
  kNonSecure,  ///< Provably outside the secure region.
  kSecure,     ///< Provably inside.
  kUnknown,    ///< The interval overlaps the boundary or is Top.
};

const char* access_class_name(AccessClass c);

enum class DiagKind : u8 {
  kRegularTouchesSecure,  ///< R1: ld/sd/amo may hit the secure region.
  kFetchFromSecure,       ///< R1: reachable code inside the secure region.
  kPtInsnEscapes,         ///< R2: ld.pt/sd.pt not provably inside.
  kSatpWriteUnvalidated,  ///< R3: satp write without token validation.
  kPmpScopeViolation,     ///< R4: guest code writes a PMP CSR.
  kJumpOutOfImage,        ///< Resolved control target outside the image.
  kIllegalInstruction,    ///< Reachable undecodable word.
};

const char* diag_kind_name(DiagKind k);

enum class Severity : u8 { kViolation, kNote };

struct Diag {
  DiagKind kind = DiagKind::kRegularTouchesSecure;
  Severity sev = Severity::kViolation;
  u64 pc = 0;
  std::string message;
  /// Disassembly context: the offending instruction plus neighbours,
  /// "      0x80100008  sd zero, 0(t0)   <== here" style.
  std::vector<std::string> context;
};

struct LintReport {
  std::vector<Diag> diags;
  /// Static classification of every reachable memory access, by pc. The
  /// trace cross-check replays dynamic effective addresses against this.
  std::map<u64, AccessClass> access_class;
  std::set<u64> reachable;

  size_t violation_count() const;
  bool clean() const { return violation_count() == 0; }
  std::vector<const Diag*> violations() const;
  std::string format() const;
};

/// Run the verifier over one image.
LintReport lint_image(const Image& img, const LintConfig& cfg);

}  // namespace ptstore::analysis
