// Control-flow graph recovery from an assembled guest image. Reachability-
// driven: blocks are discovered by exploring from the entry point (and any
// extra roots), so data words interleaved with code are never decoded as
// instructions unless control flow can actually reach them.
//
// Call modeling: a linking jal produces BOTH a kCall edge into the callee
// (analyzed with the caller's state) and a kCallReturn edge to the return
// address — the abstract interpreter clobbers caller-saved registers along
// the latter, which soundly over-approximates any callee the CFG can see.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "analysis/image.h"

namespace ptstore::analysis {

enum class EdgeKind : u8 {
  kFallthrough,  ///< Straight-line successor (incl. branch not-taken).
  kBranch,       ///< Conditional branch taken.
  kJump,         ///< jal x0 (goto).
  kCall,         ///< Linking jal: into the callee.
  kCallReturn,   ///< Linking jal: the post-call continuation in the caller.
};

const char* edge_kind_name(EdgeKind k);

struct Edge {
  u64 to = 0;
  EdgeKind kind = EdgeKind::kFallthrough;
};

struct BasicBlock {
  u64 start = 0;
  u64 end = 0;  ///< Exclusive: address just past the last instruction.
  std::vector<Edge> succs;
  std::vector<u64> preds;      ///< Start addresses of predecessor blocks.
  bool indirect_exit = false;  ///< Ends in jalr (computed target).
  bool leaves_image = false;   ///< Has a resolved target outside the image.

  size_t inst_count() const { return (end - start) / 4; }
};

class Cfg {
 public:
  /// Recover the CFG reachable from image.base plus `extra_roots`.
  static Cfg build(const Image& img, const std::vector<u64>& extra_roots = {});

  /// Blocks in ascending start-address order.
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  const BasicBlock* block_at(u64 start) const;
  /// Block whose [start, end) covers `pc`, if any.
  const BasicBlock* block_containing(u64 pc) const;

  /// Instruction-level reachability.
  bool reachable(u64 pc) const { return reachable_.count(pc) != 0; }
  const std::set<u64>& reachable_pcs() const { return reachable_; }

 private:
  std::vector<BasicBlock> blocks_;
  std::map<u64, size_t> by_start_;
  std::set<u64> reachable_;
};

/// Direct control-flow targets of a terminator at `pc` (empty for indirect
/// exits and stream-ending instructions). Exposed for tests.
std::vector<Edge> terminator_edges(const isa::Inst& in, u64 pc);

}  // namespace ptstore::analysis
