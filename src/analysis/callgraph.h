// Whole-image call graph on top of CFG recovery.
//
// Functions are discovered from call targets: the image entry, any extra
// roots, every direct `jal ra` target, and every indirect `jalr` target a
// local constant-propagation pass can resolve to an exact address. Each
// function owns the blocks reachable from its entry along intra-procedural
// edges; a `j`/`jalr x0` whose resolved target is another function's entry
// is recorded as a tail call instead of being followed.
//
// Indirect calls whose target interval is not exact degrade to a sound
// over-approximation: the site is marked unresolved, the interprocedural
// analysis havocs caller-saved state across it, and a coverage note is
// emitted — never a crash, never a silently-dropped edge.
//
// Discovery iterates: resolving an indirect target can expose a new
// function, whose blocks may contain further calls, so the CFG is rebuilt
// with the grown root set until the entry set is stable.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.h"

namespace ptstore::analysis {

struct CallSite {
  u64 pc = 0;                ///< Address of the call/tail-transfer site.
  std::vector<u64> targets;  ///< Resolved callee entries (empty if none).
  bool resolved = false;     ///< False: indirect with a ⊤/imprecise target.
  bool tail = false;         ///< Transfer without a return continuation.
};

struct Function {
  u64 entry = 0;
  std::string name;          ///< Symbol at the entry, or "fn_0x...".
  std::vector<u64> blocks;   ///< Owned block start addresses, ascending.
  std::vector<CallSite> calls;
  bool has_unresolved_call = false;

  const CallSite* call_at(u64 pc) const;
};

class CallGraph {
 public:
  /// Build the call graph (and the CFG it rides on) for one image.
  static CallGraph build(const Image& img, const std::vector<u64>& extra_roots = {});

  const Cfg& cfg() const { return cfg_; }

  /// Functions in ascending entry order.
  const std::vector<Function>& functions() const { return fns_; }
  const Function* function_at(u64 entry) const;
  /// First function whose owned blocks cover `pc` (blocks shared between
  /// functions report the lowest-entry owner).
  const Function* function_containing(u64 pc) const;

  /// Entries in bottom-up order: callees before callers; members of one
  /// recursion SCC are adjacent (their summaries iterate to a fixpoint).
  const std::vector<u64>& bottom_up() const { return bottom_up_; }

  /// SCC id of a function entry (dense, arbitrary order); entries share an
  /// id exactly when they are mutually recursive.
  size_t scc_id(u64 entry) const;
  /// True when `entry` can (transitively) call itself.
  bool recursive(u64 entry) const;

 private:
  void compute_sccs();

  Cfg cfg_;
  std::vector<Function> fns_;
  std::map<u64, size_t> by_entry_;
  std::vector<u64> bottom_up_;
  std::map<u64, size_t> scc_;
  std::set<u64> recursive_;
};

}  // namespace ptstore::analysis
