// Witness types for ptsym. A WitnessTrace is everything the replay harness
// needs to reproduce a diagnostic on the concrete System: the initial
// register file, the memory cells to poke (the solver's assignment for
// every load the path could not resolve from its own stores), the exact pc
// sequence the path takes, and the predicted architectural fact at the
// flagged instruction (effective address / stored value / satp value /
// tainted argument). Replay single-steps the core, checks the pc op-for-op,
// and asserts the predicted fact — only then does a diagnostic earn the
// WITNESSED verdict.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace ptstore::analysis::symexec {

enum class Verdict : u8 {
  kWitnessed,           // concrete replay reached the violation
  kBoundedUnreachable,  // all paths to the pc exhausted within the bound
  kUnknown,             // budget/modeling limit — no claim either way
};

const char* verdict_name(Verdict v);

/// What the replay harness must assert at the final (flagged) pc.
enum class WitnessCheck : u8 {
  kReach,    // reaching the pc is the violation (fetch/jump/illegal)
  kStore,    // a store retires with EA `ea` and value `value`
  kLoad,     // a load retires with EA `ea`
  kSatp,     // the csrrw retires and satp reads back `value`
  kPmpCsr,   // the PMP CSR write is attempted (trap or success both count)
  kCallArg,  // at the call pc, register index `ea` holds secret `value`
};

const char* witness_check_name(WitnessCheck c);

/// One memory cell replay must poke before execution starts.
struct WitnessMemCell {
  u64 addr = 0;
  u64 value = 0;
  u8 size = 8;  // bytes; sub-8 for narrow loads
};

struct WitnessTrace {
  u64 diag_pc = 0;           // flagged instruction
  std::string rule_id;       // PTLxxx / PTFxxx
  std::string kind_name;     // diag kind, human readable
  WitnessCheck check = WitnessCheck::kReach;
  u64 ea = 0;     // predicted effective address (or register index for
                  // kCallArg)
  u64 value = 0;  // predicted stored/satp/secret value
  bool pt_access = false;  // flagged access uses ld.pt/sd.pt

  /// Initial architectural register values (reg index, value). Registers
  /// absent here were never read before being written; replay zeroes them.
  std::vector<std::pair<unsigned, u64>> init_regs;
  /// Memory cells to poke before execution.
  std::vector<WitnessMemCell> mem_cells;
  /// The pc of every instruction on the path, entry first; back() is
  /// diag_pc. Replay follows this op-for-op.
  std::vector<u64> path;

  u64 depth() const { return path.size(); }
};

/// Result of refining one diagnostic.
struct SymVerdict {
  Verdict verdict = Verdict::kUnknown;
  unsigned kind_index = 0;  // DiagKind / FlowDiagKind enum value
  bool is_flow = false;
  u64 pc = 0;
  std::string rule_id;
  std::string detail;  // explored-path stats / truncation reason / replay log
  u32 depth_bound = 0;       // K in BOUNDED-UNREACHABLE(depth=K)
  u32 paths_explored = 0;
  std::optional<WitnessTrace> witness;  // present when verdict == kWitnessed
};

/// JSON document ("ptsym-witness-v1") covering a batch of verdicts, for the
/// --witness-json artifact. `image_name` labels the analysed image.
std::string witnesses_to_json(const std::vector<SymVerdict>& verdicts,
                              const std::string& image_name,
                              const std::string& backend_name);

}  // namespace ptstore::analysis::symexec
