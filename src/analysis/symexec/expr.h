// Expression arena for ptsym, the bounded symbolic executor. Path execution
// builds a DAG of bitvector expressions over RV64 values; leaves are either
// constants or *inputs* — free symbols the witness solver must assign. An
// input is minted for every initial register the path reads before writing,
// for every load that no earlier store on the path provably feeds, and for
// every operation the executor does not model (CSR reads, div/rem). Nodes
// are arena-indexed (ExprId) so path forks can share the DAG by value:
// copying a PathState copies ids, never nodes.
//
// The arena also owns concrete evaluation: given an assignment of input ids
// to 64-bit values, eval() folds the DAG bottom-up. The solver's final
// acceptance test is always concrete — a candidate assignment is only SAT
// if every path constraint and the goal predicate hold under eval() — so
// imprecision in the abstract domains can never produce a false witness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ptstore::analysis::symexec {

using ExprId = u32;
constexpr ExprId kNoExpr = ~0u;

enum class ExprOp : u8 {
  kConst,  // value in `cval`
  kInput,  // free symbol; `input` is its InputId
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShrl,
  kShra,
  kMul,
  kEq,     // 1 if a == b else 0
  kNe,
  kLtu,    // 1 if a <u b else 0
  kLts,    // 1 if a <s b else 0
  kSextW,  // sign-extend low 32 bits of a
};

const char* expr_op_name(ExprOp op);

/// Why an input exists — drives witness materialisation (initial register
/// vs. memory cell to poke) and taint bookkeeping.
enum class InputOrigin : u8 {
  kReg,    // initial value of register `reg` at path entry
  kMem,    // value loaded from memory; address expr recorded by the path
  kHavoc,  // unmodeled operation result (CSR read, div, ...)
};

using InputId = u32;

struct InputInfo {
  InputOrigin origin = InputOrigin::kHavoc;
  u8 reg = 0;             // for kReg: architectural register index
  ExprId addr = kNoExpr;  // for kMem: the load's address expression
  u64 preferred = 0;      // solver tries this value first (secret sentinels)
  bool has_preferred = false;
};

struct ExprNode {
  ExprOp op = ExprOp::kConst;
  ExprId a = kNoExpr;
  ExprId b = kNoExpr;
  u64 cval = 0;        // kConst payload
  InputId input = 0;   // kInput payload
};

class ExprArena {
 public:
  ExprId constant(u64 v);
  ExprId input(InputOrigin origin, u8 reg = 0, ExprId addr = kNoExpr);
  ExprId unary(ExprOp op, ExprId a);
  ExprId binary(ExprOp op, ExprId a, ExprId b);

  const ExprNode& node(ExprId id) const { return nodes_[id]; }
  InputInfo& input_info(InputId id) { return inputs_[id]; }
  const InputInfo& input_info(InputId id) const { return inputs_[id]; }
  u32 size() const { return static_cast<u32>(nodes_.size()); }
  u32 input_count() const { return static_cast<u32>(inputs_.size()); }

  /// True iff the node folds to a constant (op == kConst after building —
  /// binary() constant-folds eagerly, so this is a plain tag test).
  bool is_const(ExprId id) const { return nodes_[id].op == ExprOp::kConst; }
  u64 const_value(ExprId id) const { return nodes_[id].cval; }

  /// Fold the DAG under `assign` (indexed by InputId; missing entries are 0).
  u64 eval(ExprId id, const std::vector<u64>& assign) const;

  /// True iff any kInput leaf under `id` has kMem origin — used by the R2
  /// witness goal to recognise memory-derived pt-insn pointers.
  bool depends_on_memory(ExprId id) const;

  /// Collect every InputId reachable from `id` into `out` (deduplicated).
  void collect_inputs(ExprId id, std::vector<InputId>& out) const;

  std::string to_string(ExprId id) const;

 private:
  std::vector<ExprNode> nodes_;
  std::vector<InputInfo> inputs_;
};

}  // namespace ptstore::analysis::symexec
