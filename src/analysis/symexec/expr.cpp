#include "analysis/symexec/expr.h"

#include <sstream>

namespace ptstore::analysis::symexec {

namespace {

u64 apply_binary(ExprOp op, u64 a, u64 b) {
  switch (op) {
    case ExprOp::kAdd: return a + b;
    case ExprOp::kSub: return a - b;
    case ExprOp::kAnd: return a & b;
    case ExprOp::kOr: return a | b;
    case ExprOp::kXor: return a ^ b;
    case ExprOp::kShl: return a << (b & 63);
    case ExprOp::kShrl: return a >> (b & 63);
    case ExprOp::kShra:
      return static_cast<u64>(static_cast<i64>(a) >> (b & 63));
    case ExprOp::kMul: return a * b;
    case ExprOp::kEq: return a == b ? 1 : 0;
    case ExprOp::kNe: return a != b ? 1 : 0;
    case ExprOp::kLtu: return a < b ? 1 : 0;
    case ExprOp::kLts:
      return static_cast<i64>(a) < static_cast<i64>(b) ? 1 : 0;
    default: return 0;
  }
}

u64 apply_unary(ExprOp op, u64 a) {
  if (op == ExprOp::kSextW)
    return static_cast<u64>(static_cast<i64>(static_cast<i32>(a)));
  return a;
}

}  // namespace

const char* expr_op_name(ExprOp op) {
  switch (op) {
    case ExprOp::kConst: return "const";
    case ExprOp::kInput: return "input";
    case ExprOp::kAdd: return "add";
    case ExprOp::kSub: return "sub";
    case ExprOp::kAnd: return "and";
    case ExprOp::kOr: return "or";
    case ExprOp::kXor: return "xor";
    case ExprOp::kShl: return "shl";
    case ExprOp::kShrl: return "shrl";
    case ExprOp::kShra: return "shra";
    case ExprOp::kMul: return "mul";
    case ExprOp::kEq: return "eq";
    case ExprOp::kNe: return "ne";
    case ExprOp::kLtu: return "ltu";
    case ExprOp::kLts: return "lts";
    case ExprOp::kSextW: return "sextw";
  }
  return "?";
}

ExprId ExprArena::constant(u64 v) {
  // Small cache for the hot constants (0, immediates reused along a path)
  // would be nice but ids must stay append-only for PathState copies; a
  // linear dedup over the last few nodes keeps the arena small enough.
  const u32 n = static_cast<u32>(nodes_.size());
  const u32 lookback = n < 32 ? n : 32;
  for (u32 i = n - lookback; i < n; ++i)
    if (nodes_[i].op == ExprOp::kConst && nodes_[i].cval == v) return i;
  ExprNode node;
  node.op = ExprOp::kConst;
  node.cval = v;
  nodes_.push_back(node);
  return n;
}

ExprId ExprArena::input(InputOrigin origin, u8 reg, ExprId addr) {
  InputInfo info;
  info.origin = origin;
  info.reg = reg;
  info.addr = addr;
  inputs_.push_back(info);
  ExprNode node;
  node.op = ExprOp::kInput;
  node.input = static_cast<InputId>(inputs_.size() - 1);
  nodes_.push_back(node);
  return static_cast<ExprId>(nodes_.size() - 1);
}

ExprId ExprArena::unary(ExprOp op, ExprId a) {
  if (is_const(a)) return constant(apply_unary(op, const_value(a)));
  ExprNode node;
  node.op = op;
  node.a = a;
  nodes_.push_back(node);
  return static_cast<ExprId>(nodes_.size() - 1);
}

ExprId ExprArena::binary(ExprOp op, ExprId a, ExprId b) {
  if (is_const(a) && is_const(b))
    return constant(apply_binary(op, const_value(a), const_value(b)));
  // x + 0 / x ^ 0 / x | 0 / x << 0 keep chains short (li sequences emit
  // plenty of identity steps).
  if (is_const(b) && const_value(b) == 0 &&
      (op == ExprOp::kAdd || op == ExprOp::kSub || op == ExprOp::kOr ||
       op == ExprOp::kXor || op == ExprOp::kShl || op == ExprOp::kShrl ||
       op == ExprOp::kShra))
    return a;
  if (is_const(a) && const_value(a) == 0 &&
      (op == ExprOp::kAdd || op == ExprOp::kOr || op == ExprOp::kXor))
    return b;
  ExprNode node;
  node.op = op;
  node.a = a;
  node.b = b;
  nodes_.push_back(node);
  return static_cast<ExprId>(nodes_.size() - 1);
}

u64 ExprArena::eval(ExprId id, const std::vector<u64>& assign) const {
  // Iterative post-order over an explicit stack; memoised per call. The DAG
  // is append-only, so child ids are always smaller than parent ids and a
  // simple forward sweep up to `id` would also work, but most queries touch
  // a small subgraph — the stack walk only visits reachable nodes.
  std::vector<u64> memo(id + 1, 0);
  std::vector<bool> done(id + 1, false);
  std::vector<ExprId> stack{id};
  while (!stack.empty()) {
    const ExprId cur = stack.back();
    const ExprNode& n = nodes_[cur];
    if (done[cur]) {
      stack.pop_back();
      continue;
    }
    if (n.op == ExprOp::kConst) {
      memo[cur] = n.cval;
      done[cur] = true;
      stack.pop_back();
      continue;
    }
    if (n.op == ExprOp::kInput) {
      memo[cur] = n.input < assign.size() ? assign[n.input] : 0;
      done[cur] = true;
      stack.pop_back();
      continue;
    }
    const bool need_a = n.a != kNoExpr && !done[n.a];
    const bool need_b = n.b != kNoExpr && !done[n.b];
    if (need_a) stack.push_back(n.a);
    if (need_b) stack.push_back(n.b);
    if (need_a || need_b) continue;
    if (n.b == kNoExpr)
      memo[cur] = apply_unary(n.op, memo[n.a]);
    else
      memo[cur] = apply_binary(n.op, memo[n.a], memo[n.b]);
    done[cur] = true;
    stack.pop_back();
  }
  return memo[id];
}

bool ExprArena::depends_on_memory(ExprId id) const {
  std::vector<ExprId> stack{id};
  std::vector<bool> seen(id + 1, false);
  while (!stack.empty()) {
    const ExprId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    const ExprNode& n = nodes_[cur];
    if (n.op == ExprOp::kInput &&
        inputs_[n.input].origin == InputOrigin::kMem)
      return true;
    if (n.a != kNoExpr) stack.push_back(n.a);
    if (n.b != kNoExpr) stack.push_back(n.b);
  }
  return false;
}

void ExprArena::collect_inputs(ExprId id, std::vector<InputId>& out) const {
  std::vector<ExprId> stack{id};
  std::vector<bool> seen(id + 1, false);
  while (!stack.empty()) {
    const ExprId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    const ExprNode& n = nodes_[cur];
    if (n.op == ExprOp::kInput) {
      bool dup = false;
      for (InputId existing : out) dup = dup || existing == n.input;
      if (!dup) out.push_back(n.input);
    }
    if (n.a != kNoExpr) stack.push_back(n.a);
    if (n.b != kNoExpr) stack.push_back(n.b);
  }
}

std::string ExprArena::to_string(ExprId id) const {
  const ExprNode& n = nodes_[id];
  std::ostringstream os;
  if (n.op == ExprOp::kConst) {
    os << "0x" << std::hex << n.cval;
  } else if (n.op == ExprOp::kInput) {
    const InputInfo& info = inputs_[n.input];
    os << (info.origin == InputOrigin::kReg
               ? "reg"
               : info.origin == InputOrigin::kMem ? "mem" : "havoc")
       << "#" << n.input;
  } else if (n.b == kNoExpr) {
    os << expr_op_name(n.op) << "(" << to_string(n.a) << ")";
  } else {
    os << expr_op_name(n.op) << "(" << to_string(n.a) << ", " << to_string(n.b)
       << ")";
  }
  return os.str();
}

}  // namespace ptstore::analysis::symexec
