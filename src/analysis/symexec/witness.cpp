#include "analysis/symexec/witness.h"

#include <sstream>

#include "telemetry/json.h"

namespace ptstore::analysis::symexec {

namespace {

std::string hex(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kWitnessed: return "WITNESSED";
    case Verdict::kBoundedUnreachable: return "BOUNDED-UNREACHABLE";
    case Verdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

const char* witness_check_name(WitnessCheck c) {
  switch (c) {
    case WitnessCheck::kReach: return "reach";
    case WitnessCheck::kStore: return "store";
    case WitnessCheck::kLoad: return "load";
    case WitnessCheck::kSatp: return "satp";
    case WitnessCheck::kPmpCsr: return "pmp_csr";
    case WitnessCheck::kCallArg: return "call_arg";
  }
  return "?";
}

std::string witnesses_to_json(const std::vector<SymVerdict>& verdicts,
                              const std::string& image_name,
                              const std::string& backend_name) {
  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.begin_object()
      .kv("schema", "ptsym-witness-v1")
      .kv("image", image_name)
      .kv("backend", backend_name);
  w.key("verdicts").begin_array();
  for (const SymVerdict& v : verdicts) {
    w.begin_object()
        .kv("rule", v.rule_id)
        .kv("pc", hex(v.pc))
        .kv("verdict", verdict_name(v.verdict))
        .kv("detail", v.detail)
        .kv("depth_bound", static_cast<u64>(v.depth_bound))
        .kv("paths_explored", static_cast<u64>(v.paths_explored));
    if (v.witness) {
      const WitnessTrace& t = *v.witness;
      w.key("witness").begin_object();
      w.kv("check", witness_check_name(t.check))
          .kv("ea", hex(t.ea))
          .kv("value", hex(t.value))
          .kv("pt_access", t.pt_access)
          .kv("depth", t.depth());
      w.key("init_regs").begin_array();
      for (const auto& [reg, val] : t.init_regs)
        w.begin_object()
            .kv("reg", static_cast<u64>(reg))
            .kv("value", hex(val))
            .end_object();
      w.end_array();
      w.key("mem_cells").begin_array();
      for (const WitnessMemCell& cell : t.mem_cells)
        w.begin_object()
            .kv("addr", hex(cell.addr))
            .kv("value", hex(cell.value))
            .kv("size", static_cast<u64>(cell.size))
            .end_object();
      w.end_array();
      w.key("path").begin_array();
      for (u64 pc : t.path) w.value(hex(pc));
      w.end_array();
      w.end_object();  // witness
    }
    w.end_object();  // verdict
  }
  w.end_array();   // verdicts
  w.end_object();  // document
  return os.str();
}

}  // namespace ptstore::analysis::symexec
