#include "analysis/symexec/solver.h"

#include <algorithm>

namespace ptstore::analysis::symexec {

namespace {

constexpr u64 kSignBit = u64{1} << 63;

u64 bit_mask(unsigned n) { return n >= 64 ? ~u64{0} : (u64{1} << n) - 1; }

unsigned msb_index(u64 v) {
  unsigned i = 0;
  while (v >>= 1) ++i;
  return i;
}

/// Count of consecutive known bits starting at bit 0.
unsigned trailing_known(u64 kmask) {
  unsigned n = 0;
  while (n < 64 && ((kmask >> n) & 1)) ++n;
  return n;
}

/// A [lo,hi] interval maps to a contiguous interval under the 2^63 signed
/// bias iff it does not straddle the sign boundary.
bool sign_contiguous(const Domain& d) {
  return (d.lo < kSignBit) == (d.hi < kSignBit);
}

}  // namespace

void Domain::meet_interval(u64 nlo, u64 nhi) {
  if (bottom) return;
  lo = std::max(lo, nlo);
  hi = std::min(hi, nhi);
  if (lo > hi) bottom = true;
}

void Domain::meet_known(u64 nmask, u64 nval) {
  if (bottom) return;
  nval &= nmask;
  const u64 both = kmask & nmask;
  if ((kval & both) != (nval & both)) {
    bottom = true;
    return;
  }
  kmask |= nmask;
  kval |= nval;
}

void Domain::meet(const Domain& other) {
  if (other.bottom) {
    bottom = true;
    return;
  }
  meet_interval(other.lo, other.hi);
  meet_known(other.kmask, other.kval);
}

void Domain::reduce() {
  if (bottom) return;
  for (int round = 0; round < 2 && !bottom; ++round) {
    // Interval → known bits: the common high-order prefix of lo and hi is
    // fixed for every value in [lo,hi].
    if (lo == hi) {
      meet_known(~u64{0}, lo);
    } else {
      const u64 diff = lo ^ hi;
      const u64 prefix = ~bit_mask(msb_index(diff) + 1);
      if (prefix) meet_known(prefix, lo & prefix);
    }
    if (bottom) return;
    // Known bits → interval: every matching value lies in
    // [kval, kval | ~kmask] (free bits all-0 / all-1).
    meet_interval(kval, kval | ~kmask);
  }
}

const char* solve_status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::kSat: return "sat";
    case SolveStatus::kUnsat: return "unsat";
    case SolveStatus::kBudget: return "budget";
  }
  return "?";
}

Solver::Solver(const ExprArena& arena, u32 split_budget)
    : arena_(arena), budget_(split_budget) {}

void Solver::require(ExprId node, Domain d) {
  constraints_.push_back({node, d});
  note_support(node);
}

void Solver::note_support(ExprId node) {
  std::vector<InputId> ids;
  arena_.collect_inputs(node, ids);
  for (InputId in : ids) {
    // Find the arena node for this input: inputs are minted with their node
    // appended immediately, so scan once (arena is small per path).
    for (u32 i = 0; i < arena_.size(); ++i) {
      const ExprNode& n = arena_.node(i);
      if (n.op == ExprOp::kInput && n.input == in) {
        if (std::find(support_inputs_.begin(), support_inputs_.end(), i) ==
            support_inputs_.end())
          support_inputs_.push_back(i);
        break;
      }
    }
  }
}

void Solver::forward(std::vector<Domain>& doms, ExprId id) {
  const ExprNode& n = arena_.node(id);
  Domain r = Domain::top();
  switch (n.op) {
    case ExprOp::kConst:
      r = Domain::exact(n.cval);
      break;
    case ExprOp::kInput:
      return;  // inputs have no children; their domain comes from meets
    case ExprOp::kSextW: {
      const Domain& a = doms[n.a];
      if (a.bottom) {
        doms[id].bottom = true;
        return;
      }
      if (a.is_singleton()) {
        r = Domain::exact(
            static_cast<u64>(static_cast<i64>(static_cast<i32>(a.lo))));
      } else {
        // Low 32 known bits survive; if bit 31 is known the top 32 bits are
        // its copies.
        r.meet_known(a.kmask & 0xFFFFFFFFu, a.kval & 0xFFFFFFFFu);
        if (a.kmask & 0x80000000u) {
          const u64 sign = (a.kval >> 31) & 1;
          r.meet_known(~u64{0} << 31, sign ? (~u64{0} << 31) : 0);
        }
        if (a.hi < 0x80000000u) r.meet_interval(a.lo, a.hi);
      }
      break;
    }
    default: {
      const Domain& a = doms[n.a];
      const Domain& b = doms[n.b];
      if (a.bottom || b.bottom) {
        doms[id].bottom = true;
        return;
      }
      switch (n.op) {
        case ExprOp::kAdd: {
          if (a.hi <= ~u64{0} - b.hi) r.meet_interval(a.lo + b.lo, a.hi + b.hi);
          const unsigned t =
              std::min(trailing_known(a.kmask), trailing_known(b.kmask));
          if (t > 0)
            r.meet_known(bit_mask(t), (a.kval + b.kval) & bit_mask(t));
          break;
        }
        case ExprOp::kSub: {
          if (a.lo >= b.hi) r.meet_interval(a.lo - b.hi, a.hi - b.lo);
          const unsigned t =
              std::min(trailing_known(a.kmask), trailing_known(b.kmask));
          if (t > 0)
            r.meet_known(bit_mask(t), (a.kval - b.kval) & bit_mask(t));
          break;
        }
        case ExprOp::kAnd: {
          const u64 zero = (a.kmask & ~a.kval) | (b.kmask & ~b.kval);
          const u64 one = (a.kmask & a.kval) & (b.kmask & b.kval);
          r.meet_known(zero | one, one);
          r.meet_interval(0, std::min(a.hi, b.hi));
          break;
        }
        case ExprOp::kOr: {
          const u64 one = (a.kmask & a.kval) | (b.kmask & b.kval);
          const u64 zero = (a.kmask & ~a.kval) & (b.kmask & ~b.kval);
          r.meet_known(zero | one, one);
          const u64 top = a.hi | b.hi;
          r.meet_interval(std::max(a.lo, b.lo),
                          top ? bit_mask(msb_index(top) + 1) : 0);
          break;
        }
        case ExprOp::kXor: {
          const u64 both = a.kmask & b.kmask;
          r.meet_known(both, (a.kval ^ b.kval) & both);
          const u64 top = a.hi | b.hi;
          r.meet_interval(0, top ? bit_mask(msb_index(top) + 1) : 0);
          break;
        }
        case ExprOp::kShl:
          if (b.is_singleton()) {
            const unsigned s = static_cast<unsigned>(b.lo & 63);
            r.meet_known((a.kmask << s) | bit_mask(s), a.kval << s);
            if (a.hi <= (~u64{0} >> s))
              r.meet_interval(a.lo << s, a.hi << s);
          }
          break;
        case ExprOp::kShrl:
          if (b.is_singleton()) {
            const unsigned s = static_cast<unsigned>(b.lo & 63);
            r.meet_known((a.kmask >> s) | ~(~u64{0} >> s), a.kval >> s);
            r.meet_interval(a.lo >> s, a.hi >> s);
          }
          break;
        case ExprOp::kShra:
          if (b.is_singleton()) {
            const unsigned s = static_cast<unsigned>(b.lo & 63);
            if (a.hi < kSignBit) {
              // Provably non-negative: behaves like a logical shift.
              r.meet_known((a.kmask >> s) | ~(~u64{0} >> s), a.kval >> s);
              r.meet_interval(a.lo >> s, a.hi >> s);
            } else if (a.kmask & kSignBit) {
              const u64 sign = (a.kval >> 63) & 1;
              const u64 ext = sign ? ~(~u64{0} >> s) : 0;
              r.meet_known((a.kmask >> s) | ~(~u64{0} >> s),
                           (a.kval >> s) | ext);
            }
          }
          break;
        case ExprOp::kMul:
          if (a.is_singleton() && b.is_singleton())
            r = Domain::exact(a.lo * b.lo);
          else if (b.is_singleton() && b.lo != 0 && a.hi <= ~u64{0} / b.lo)
            r.meet_interval(a.lo * b.lo, a.hi * b.lo);
          else if (a.is_singleton() && a.lo != 0 && b.hi <= ~u64{0} / a.lo)
            r.meet_interval(a.lo * b.lo, a.lo * b.hi);
          break;
        case ExprOp::kEq:
          r.meet_interval(0, 1);
          if (a.hi < b.lo || b.hi < a.lo)
            r.meet_interval(0, 0);  // disjoint: never equal
          else if (a.is_singleton() && b.is_singleton() && a.lo == b.lo)
            r.meet_interval(1, 1);
          break;
        case ExprOp::kNe:
          r.meet_interval(0, 1);
          if (a.hi < b.lo || b.hi < a.lo)
            r.meet_interval(1, 1);
          else if (a.is_singleton() && b.is_singleton() && a.lo == b.lo)
            r.meet_interval(0, 0);
          break;
        case ExprOp::kLtu:
          r.meet_interval(0, 1);
          if (a.hi < b.lo) r.meet_interval(1, 1);
          else if (a.lo >= b.hi) r.meet_interval(0, 0);
          break;
        case ExprOp::kLts:
          r.meet_interval(0, 1);
          if (sign_contiguous(a) && sign_contiguous(b)) {
            const u64 alo = a.lo ^ kSignBit, ahi = a.hi ^ kSignBit;
            const u64 blo = b.lo ^ kSignBit, bhi = b.hi ^ kSignBit;
            if (ahi < blo) r.meet_interval(1, 1);
            else if (alo >= bhi) r.meet_interval(0, 0);
          }
          break;
        default:
          break;
      }
    }
  }
  r.reduce();
  doms[id].meet(r);
  doms[id].reduce();
}

void Solver::backward(std::vector<Domain>& doms, ExprId id) {
  const ExprNode& n = arena_.node(id);
  const Domain& r = doms[id];
  if (r.bottom || n.op == ExprOp::kConst || n.op == ExprOp::kInput) return;

  // Shift children into place, meeting refined domains back in.
  auto refine_shifted_add = [&](ExprId child, u64 delta, bool add) {
    // child = r -/+ delta; valid only when the shifted interval stays
    // contiguous (no mixed wraparound).
    const u64 x = add ? r.lo + delta : r.lo - delta;
    const u64 y = add ? r.hi + delta : r.hi - delta;
    if (x <= y) doms[child].meet_interval(x, y);
    const unsigned t = trailing_known(r.kmask);
    if (t > 0)
      doms[child].meet_known(bit_mask(t),
                             (add ? r.kval + delta : r.kval - delta) &
                                 bit_mask(t));
    doms[child].reduce();
  };

  switch (n.op) {
    case ExprOp::kAdd: {
      if (doms[n.b].is_singleton()) refine_shifted_add(n.a, doms[n.b].lo, false);
      if (doms[n.a].is_singleton()) refine_shifted_add(n.b, doms[n.a].lo, false);
      break;
    }
    case ExprOp::kSub: {
      if (doms[n.b].is_singleton()) refine_shifted_add(n.a, doms[n.b].lo, true);
      if (doms[n.a].is_singleton()) {
        // b = a - r
        const u64 s = doms[n.a].lo;
        const u64 x = s - r.hi, y = s - r.lo;
        if (x <= y) doms[n.b].meet_interval(x, y);
        doms[n.b].reduce();
      }
      break;
    }
    case ExprOp::kAnd: {
      auto refine_and = [&](ExprId child, const Domain& mask_dom) {
        if (!mask_dom.is_singleton()) return;
        const u64 m = mask_dom.lo;
        if (r.kmask & r.kval & ~m) {
          doms[child].bottom = true;  // result has a 1 where the mask is 0
          return;
        }
        doms[child].meet_known(m & r.kmask, r.kval & m);
        doms[child].reduce();
      };
      refine_and(n.a, doms[n.b]);
      refine_and(n.b, doms[n.a]);
      break;
    }
    case ExprOp::kOr: {
      auto refine_or = [&](ExprId child, const Domain& mask_dom) {
        if (!mask_dom.is_singleton()) return;
        const u64 m = mask_dom.lo;
        if (r.kmask & ~r.kval & m) {
          doms[child].bottom = true;  // result has a 0 where the mask is 1
          return;
        }
        doms[child].meet_known(~m & r.kmask, r.kval & ~m);
        doms[child].reduce();
      };
      refine_or(n.a, doms[n.b]);
      refine_or(n.b, doms[n.a]);
      break;
    }
    case ExprOp::kXor: {
      auto refine_xor = [&](ExprId child, const Domain& mask_dom) {
        if (!mask_dom.is_singleton()) return;
        doms[child].meet_known(r.kmask, (r.kval ^ mask_dom.lo) & r.kmask);
        doms[child].reduce();
      };
      refine_xor(n.a, doms[n.b]);
      refine_xor(n.b, doms[n.a]);
      break;
    }
    case ExprOp::kShl:
      if (doms[n.b].is_singleton()) {
        const unsigned s = static_cast<unsigned>(doms[n.b].lo & 63);
        if (r.kmask & r.kval & bit_mask(s)) {
          doms[n.a].bottom = true;  // low bits of a left shift must be zero
          break;
        }
        doms[n.a].meet_known(bit_mask(64 - s) & (r.kmask >> s), r.kval >> s);
        doms[n.a].reduce();
      }
      break;
    case ExprOp::kShrl:
      if (doms[n.b].is_singleton()) {
        const unsigned s = static_cast<unsigned>(doms[n.b].lo & 63);
        if (s > 0 && (r.kmask & r.kval & ~(~u64{0} >> s))) {
          doms[n.a].bottom = true;  // top bits of a logical right shift are 0
          break;
        }
        doms[n.a].meet_known(r.kmask << s, r.kval << s);
        if (r.hi <= (~u64{0} >> s))
          doms[n.a].meet_interval(r.lo << s, (r.hi << s) | bit_mask(s));
        doms[n.a].reduce();
      }
      break;
    case ExprOp::kEq:
    case ExprOp::kNe: {
      const bool forced_true =
          r.is_singleton() && (r.lo == 1) == (n.op == ExprOp::kEq);
      const bool forced_false =
          r.is_singleton() && (r.lo == 1) != (n.op == ExprOp::kEq);
      if (forced_true) {
        Domain both = doms[n.a];
        both.meet(doms[n.b]);
        both.reduce();
        doms[n.a].meet(both);
        doms[n.b].meet(both);
        doms[n.a].reduce();
        doms[n.b].reduce();
      } else if (forced_false) {
        auto trim = [&](ExprId child, const Domain& other) {
          if (!other.is_singleton()) return;
          Domain& d = doms[child];
          if (d.bottom) return;
          if (d.is_singleton() && d.lo == other.lo) {
            d.bottom = true;
          } else if (d.lo == other.lo) {
            d.meet_interval(d.lo + 1, d.hi);
            d.reduce();
          } else if (d.hi == other.lo) {
            d.meet_interval(d.lo, d.hi - 1);
            d.reduce();
          }
        };
        trim(n.a, doms[n.b]);
        trim(n.b, doms[n.a]);
      }
      break;
    }
    case ExprOp::kLtu:
    case ExprOp::kLts: {
      if (!r.is_singleton()) break;
      const bool biased = n.op == ExprOp::kLts;
      Domain a = doms[n.a];
      Domain b = doms[n.b];
      if (biased) {
        if (!sign_contiguous(a) || !sign_contiguous(b)) break;
        a.lo ^= kSignBit;
        a.hi ^= kSignBit;
        b.lo ^= kSignBit;
        b.hi ^= kSignBit;
        a.kmask = a.kval = 0;  // known bits do not survive the bias cheaply
        b.kmask = b.kval = 0;
      }
      if (r.lo == 1) {
        // a < b: a <= b.hi - 1, b >= a.lo + 1.
        if (b.hi == 0) {
          doms[n.a].bottom = true;
          break;
        }
        a.meet_interval(a.lo, b.hi - 1);
        if (a.lo == ~u64{0}) {
          doms[n.b].bottom = true;
          break;
        }
        b.meet_interval(a.lo + 1, b.hi);
      } else {
        // a >= b.
        a.meet_interval(b.lo, a.hi);
        b.meet_interval(b.lo, a.hi);
      }
      if (biased) {
        a.lo ^= kSignBit;
        a.hi ^= kSignBit;
        b.lo ^= kSignBit;
        b.hi ^= kSignBit;
        if (a.lo > a.hi || b.lo > b.hi) break;  // wrapped back: skip
        doms[n.a].meet_interval(a.lo, a.hi);
        doms[n.b].meet_interval(b.lo, b.hi);
      } else {
        doms[n.a].meet(a);
        doms[n.b].meet(b);
      }
      doms[n.a].reduce();
      doms[n.b].reduce();
      break;
    }
    case ExprOp::kSextW: {
      // Push the low 32 result bits back into the operand (bits 63..32 of
      // the result are sign copies and carry no extra information).
      doms[n.a].meet_known(r.kmask & 0xFFFFFFFFu, r.kval & 0xFFFFFFFFu);
      doms[n.a].reduce();
      break;
    }
    default:
      break;
  }
}

bool Solver::propagate(std::vector<Domain>& doms,
                       const std::vector<Split>& splits) {
  const u32 n = arena_.size();
  doms.assign(n, Domain::top());
  for (int iter = 0; iter < 4; ++iter) {
    // Children precede parents (arena is append-only), so one forward sweep
    // in id order reaches a fixpoint of the forward transfers.
    for (u32 i = 0; i < n; ++i) forward(doms, i);
    for (const Split& c : constraints_) {
      doms[c.node].meet(c.dom);
      doms[c.node].reduce();
    }
    for (const Split& s : splits) {
      doms[s.node].meet(s.dom);
      doms[s.node].reduce();
    }
    for (u32 i = n; i-- > 0;) backward(doms, i);
    for (u32 i = 0; i < n; ++i)
      if (doms[i].bottom) return false;
  }
  return true;
}

std::vector<u64> Solver::pick(const std::vector<Domain>& doms) {
  std::vector<u64> assign(arena_.input_count(), 0);
  for (ExprId node : support_inputs_) {
    const InputId in = arena_.node(node).input;
    const Domain& d = doms[node];
    const InputInfo& info = arena_.input_info(in);
    u64 v = d.lo;
    if (info.has_preferred && d.contains(info.preferred)) {
      v = info.preferred;
    } else if (d.contains(d.lo)) {
      v = d.lo;
    } else if (d.contains(d.kval)) {
      v = d.kval;  // free bits zero
    } else {
      const u64 forced = (d.lo & ~d.kmask) | d.kval;
      if (d.contains(forced)) v = forced;
      else if (d.contains(d.hi)) v = d.hi;
    }
    assign[in] = v;
  }
  // Unsupported inputs keep their preferred value (secret sentinels must
  // materialise even when no constraint mentions them).
  for (InputId in = 0; in < arena_.input_count(); ++in) {
    const InputInfo& info = arena_.input_info(in);
    bool supported = false;
    for (ExprId node : support_inputs_)
      supported = supported || arena_.node(node).input == in;
    if (!supported && info.has_preferred) assign[in] = info.preferred;
  }
  return assign;
}

bool Solver::concrete_ok(const std::vector<u64>& assign,
                         const GoalCheck& goal) {
  for (const Split& c : constraints_)
    if (!c.dom.contains(arena_.eval(c.node, assign))) return false;
  return !goal || goal(assign);
}

SolveStatus Solver::search(std::vector<Split>& splits, const GoalCheck& goal,
                           SolveResult& out) {
  std::vector<Domain> doms;
  if (!propagate(doms, splits)) return SolveStatus::kUnsat;

  const std::vector<u64> assign = pick(doms);
  if (concrete_ok(assign, goal)) {
    out.assign = assign;
    return SolveStatus::kSat;
  }

  // Split the widest supported input.
  ExprId widest = kNoExpr;
  u64 width = 0;
  for (ExprId node : support_inputs_) {
    const Domain& d = doms[node];
    const u64 w = d.hi - d.lo;
    if (w > width || (widest == kNoExpr && w > 0)) {
      width = w;
      widest = node;
    }
  }
  if (widest == kNoExpr || width == 0) {
    // Every supported input is pinned; the unique assignment fails the
    // concrete check, so the constraint set is unsatisfiable.
    return SolveStatus::kUnsat;
  }
  if (splits_used_ >= budget_) return SolveStatus::kBudget;
  ++splits_used_;

  const Domain& d = doms[widest];
  const u64 mid = d.lo + (d.hi - d.lo) / 2;
  Domain left = Domain::range(d.lo, mid);
  Domain right = Domain::range(mid + 1, d.hi);
  // Search the half holding the preferred (or current) pick first.
  const InputId in = arena_.node(widest).input;
  const u64 cur = assign[in];
  const bool left_first = cur <= mid;

  SolveStatus first_status, second_status;
  splits.push_back({widest, left_first ? left : right});
  first_status = search(splits, goal, out);
  splits.pop_back();
  if (first_status == SolveStatus::kSat) return SolveStatus::kSat;

  splits.push_back({widest, left_first ? right : left});
  second_status = search(splits, goal, out);
  splits.pop_back();
  if (second_status == SolveStatus::kSat) return SolveStatus::kSat;

  if (first_status == SolveStatus::kBudget ||
      second_status == SolveStatus::kBudget)
    return SolveStatus::kBudget;
  return SolveStatus::kUnsat;
}

SolveResult Solver::solve(const GoalCheck& goal) {
  SolveResult out;
  std::vector<Split> splits;
  out.status = search(splits, goal, out);
  out.splits_used = splits_used_;
  return out;
}

}  // namespace ptstore::analysis::symexec
