// Bounded path-sensitive symbolic execution for ptsym. The explorer runs a
// depth-first search over concrete program paths from an entry pc toward
// one flagged pc (the *goal*), carrying:
//
//   - a symbolic register file of ExprArena expressions over path inputs
//     (initial registers, unresolved loads, havocked CSR reads),
//   - the path condition: one (expr, required-domain) constraint per
//     conditional branch taken,
//   - a store history with constant-address forwarding, so loads see the
//     values earlier stores on the same path wrote,
//   - the same must-flags ptlint/ptflow track (validated, mediated,
//     cred_written), updated at validate/mediation calls and
//     credential-home stores,
//   - per-register taint mirroring ptflow's secret classes.
//
// When a path reaches the goal pc, the goal's premise (must-flag state,
// value taint) is checked path-locally and its effective-address/value
// requirements become solver constraints on top of the path condition. A
// SAT assignment is materialised into a WitnessTrace. Paths are pruned at
// branches whose target provably cannot reach the goal (see slice.h);
// pruning is disabled inside calls because kCallReturn edges do not model
// the callee-to-caller return.
//
// Truncation discipline: any under-approximating cut — path or step budget
// exhausted, unresolved indirect jump, solver budget, irreplayable havoc —
// sets `truncated`, and the driver must then report UNKNOWN instead of
// BOUNDED-UNREACHABLE. Fresh inputs for unresolved loads over-approximate
// memory and never block an unreachability claim.
#pragma once

#include <array>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/image.h"
#include "analysis/ptflow.h"
#include "analysis/ptlint.h"
#include "analysis/symexec/expr.h"
#include "analysis/symexec/solver.h"
#include "analysis/symexec/witness.h"

namespace ptstore::analysis::symexec {

/// Executor-private taint bit: the value passed through memory (loaded,
/// possibly forwarded from an earlier store on the path). Rides in the
/// secret byte of TaintSet — taint.h defines only bits 0..3, and bit 7 is
/// reserved here — so taint_after() propagates it through ALU chains for
/// free. The R2 goal uses it to recognise attacker-planted pt-insn
/// pointers whose concrete value forwarding already resolved.
inline constexpr TaintSet kTaintSymMem = 1u << 7;
/// The real secret classes: the secret byte minus the executor's bit.
inline constexpr TaintSet kSecretBits =
    static_cast<TaintSet>(kTaintSecretMask & ~kTaintSymMem);

/// Budget knobs. Defaults are generous for corpus-sized images; the
/// --witness-budget N CLI knob scales solver splits.
struct WitnessBudget {
  u32 max_paths = 512;      ///< completed paths per diagnostic
  u32 max_steps = 4096;     ///< instructions per path
  u32 solver_splits = 4096; ///< branch-and-bound splits per solve() call
};

/// What must hold at the flagged pc for a path to witness the diagnostic.
struct Goal {
  u64 pc = 0;
  WitnessCheck check = WitnessCheck::kReach;
  std::string rule_id;
  std::string kind_name;

  /// EA must fall in one of these [lo, hi) ranges (tried in order; the
  /// first SAT disjunct wins). Empty means no EA constraint.
  std::vector<std::pair<u64, u64>> ea_in;
  /// R2 semantics: a pt-insn pointer *derived from memory* (kTaintSymMem
  /// on its base register) witnesses the diagnostic even when its concrete
  /// EA stays inside the secure region — the static analysis could not
  /// confine an attacker-planted pointer, and the replayed access shows it
  /// being dereferenced. Replay-friendly out-of-region disjuncts are still
  /// tried first.
  bool allow_mem_derived_ea = false;
  /// T1/T2: the stored value must carry one of these secret-taint bits.
  u16 value_taint_mask = 0;
  /// T3: some argument register a0..a7 must carry secret taint.
  bool arg_taint = false;

  enum class FlagReq : u8 {
    kNone,
    kValidatedFalse,   // R3: no dominating token validation
    kMediatedFalse,    // M1: no dominating mediation call
    kCredWrittenFalse, // M2: credential not yet committed
  };
  FlagReq flag = FlagReq::kNone;

  /// Extra concrete veto on (ea, value) after the solver accepts — e.g.
  /// T1's sanctioned-home exclusion. Return false to reject.
  std::function<bool(u64 ea, u64 value)> concrete_ok;
};

struct ExploreResult {
  bool found = false;
  bool truncated = false;
  std::string truncation_reason;
  u32 paths = 0;       ///< completed paths
  u32 max_depth = 0;   ///< longest path explored (instructions)
  WitnessTrace witness;  ///< valid when found
};

class PathExplorer {
 public:
  PathExplorer(const Image& img, const Cfg& cfg, const WitnessBudget& budget);

  /// Optional ptflow geometry: secret taint sources, mediation/bind
  /// symbols, credential home. Must outlive the explorer.
  void set_flow_spec(const FlowSpec* spec) { flow_ = spec; }
  /// Optional ptlint geometry: token-validate symbols. Must outlive.
  void set_lint_config(const LintConfig* cfg) { lint_ = cfg; }

  /// Search all paths from `entry_pc` to goal.pc within the budget.
  ExploreResult explore(const Goal& goal, u64 entry_pc);

 private:
  struct StoreRec {
    bool addr_const = false;
    u64 addr = 0;        // valid when addr_const
    ExprId addr_expr = kNoExpr;
    ExprId value = kNoExpr;
    u8 size = 8;
    TaintSet taint = 0;  // of the stored value, for load forwarding
  };
  struct LoadCacheEntry {
    u64 addr = 0;
    u8 size = 8;
    ExprId value = kNoExpr;
  };
  /// One fresh memory input minted by an unresolved load; the witness
  /// materialises the cell so replay can poke the solved value in.
  struct CellRec {
    InputId input = 0;
    bool addr_const = false;
    u64 addr = 0;  // valid when addr_const
    ExprId addr_expr = kNoExpr;
    u8 size = 8;
  };
  struct PathConstraint {
    ExprId node = kNoExpr;
    Domain dom;
  };
  struct PathState {
    u64 pc = 0;
    u32 steps = 0;
    u32 call_depth = 0;
    std::array<ExprId, 32> regs{};
    std::array<TaintSet, 32> taint{};
    bool validated = false;
    bool mediated = false;
    bool cred_written = false;
    bool has_symbolic_load = false;
    std::vector<u64> trace;
    std::vector<PathConstraint> constraints;
    std::vector<StoreRec> stores;
    std::vector<LoadCacheEntry> load_cache;
    std::vector<CellRec> cells;
  };

  ExprId reg(PathState& st, unsigned r);
  void set_reg(PathState& st, unsigned r, ExprId v, TaintSet t);
  ExprId effective_address(PathState& st, const isa::Inst& in);
  ExprId do_load(PathState& st, ExprId addr, u8 size, bool sign_extend,
                 TaintSet* taint_out);
  void do_store(PathState& st, ExprId addr, ExprId value, u8 size,
                TaintSet value_taint);
  void note_call_target(PathState& st, u64 target);

  /// Execute the instruction at st.pc, possibly forking onto `stack`.
  /// Returns false when the path ends (or truncates) at this instruction.
  bool step(PathState& st, std::vector<PathState>& stack,
            ExploreResult& result);

  /// Attempt to witness the goal from `st` (st.pc == goal.pc, instruction
  /// not yet executed). Sets result.found / truncated.
  void try_goal(PathState& st, const Goal& goal, ExploreResult& result);

  bool solve_goal(PathState& st, const Goal& goal, ExprId ea,
                  ExprId value, u8 access_size, bool mem_derived_ea,
                  ExploreResult& result);
  bool build_witness(PathState& st, const Goal& goal, ExprId ea, ExprId value,
                     const std::vector<u64>& assign, ExploreResult& result);

  void truncate(ExploreResult& result, const std::string& why);

  const Image& img_;
  const Cfg& cfg_;
  WitnessBudget budget_;
  const FlowSpec* flow_ = nullptr;
  const LintConfig* lint_ = nullptr;

  ExprArena arena_;
  std::set<u64> slice_;       // blocks that can reach the goal
  std::set<u64> wild_;        // blocks upstream of unmodeled indirect exits
};

}  // namespace ptstore::analysis::symexec
