// Dependency-free constraint solver for ptsym witness queries. No external
// SMT: every expression node carries a *reduced product* of two abstract
// domains — an unsigned interval [lo,hi] and known-bits (kmask,kval) — and
// solving is propagate + split:
//
//   1. Forward pass (children → parents) runs the abstract transfer of each
//      operator; constraint domains are met into their nodes.
//   2. Backward pass (parents → children) inverts the operators that are
//      invertible enough to matter for kernel address arithmetic: add/sub
//      with a pinned operand, and/or/xor/shifts by constants, compares
//      forced to a definite truth value (signed compares go through the
//      2^63 bias when the interval does not straddle the sign boundary).
//   3. A candidate assignment is picked greedily (preferred value first —
//      secret sentinels — then domain corners) and accepted only if the
//      *concrete* evaluation of every constraint and the caller's goal
//      predicate pass. Abstract imprecision therefore never yields a false
//      SAT.
//   4. If the pick fails, the widest input domain is split at its midpoint
//      and both halves are searched, preferred half first. Each split costs
//      one unit of budget; exhausting the budget returns kBudget, which the
//      driver must surface as UNKNOWN — never as a verdict.
//
// UNSAT is only reported when propagation derives bottom or when every
// input is pinned to a single value that still fails the concrete check;
// both are sound refutations of the constraint set.
#pragma once

#include <functional>
#include <vector>

#include "analysis/symexec/expr.h"

namespace ptstore::analysis::symexec {

struct Domain {
  u64 lo = 0;
  u64 hi = ~u64{0};
  u64 kmask = 0;  // bit set => bit of the value is known
  u64 kval = 0;   // known bit values (subset of kmask)
  bool bottom = false;

  static Domain top() { return Domain{}; }
  static Domain exact(u64 v) { return Domain{v, v, ~u64{0}, v, false}; }
  static Domain range(u64 lo, u64 hi) {
    Domain d;
    d.lo = lo;
    d.hi = hi;
    d.bottom = lo > hi;
    return d;
  }

  bool is_singleton() const { return !bottom && lo == hi; }
  bool contains(u64 v) const {
    return !bottom && v >= lo && v <= hi && (v & kmask) == kval;
  }
  /// Meet with another interval; may go bottom.
  void meet_interval(u64 nlo, u64 nhi);
  /// Meet with known bits; conflicting known bits go bottom.
  void meet_known(u64 nmask, u64 nval);
  void meet(const Domain& other);
  /// Re-establish the reduced product: interval common-prefix bits become
  /// known bits, and the known-bits envelope [kval, kval|~kmask] clamps the
  /// interval. Sound both ways: no value passing contains() before
  /// reduce() is excluded after.
  void reduce();
};

enum class SolveStatus : u8 {
  kSat,     // assignment found and concretely validated
  kUnsat,   // constraint set refuted within the abstraction (sound)
  kBudget,  // split budget exhausted — caller must report UNKNOWN
};

const char* solve_status_name(SolveStatus s);

struct SolveResult {
  SolveStatus status = SolveStatus::kUnsat;
  std::vector<u64> assign;  // indexed by InputId; valid when kSat
  u32 splits_used = 0;
};

class Solver {
 public:
  /// `arena` must outlive the solver. `split_budget` bounds the number of
  /// branch-and-bound splits across the whole solve() call.
  Solver(const ExprArena& arena, u32 split_budget);

  /// Require node's value to lie in `d`.
  void require(ExprId node, Domain d);
  void require_eq(ExprId node, u64 v) { require(node, Domain::exact(v)); }
  void require_in(ExprId node, u64 lo, u64 hi) {
    require(node, Domain::range(lo, hi));
  }
  /// Mark a node whose inputs matter to the goal predicate even if no
  /// require() mentions it (e.g. a sanctioned-home post-check on an EA).
  void note_support(ExprId node);

  using GoalCheck = std::function<bool(const std::vector<u64>& assign)>;

  /// Search for an assignment satisfying all requirements plus `goal`
  /// (optional). The returned assignment is always concretely validated.
  SolveResult solve(const GoalCheck& goal = {});

 private:
  struct Split {
    ExprId node;
    Domain dom;
  };

  bool propagate(std::vector<Domain>& doms, const std::vector<Split>& splits);
  void forward(std::vector<Domain>& doms, ExprId id);
  void backward(std::vector<Domain>& doms, ExprId id);
  std::vector<u64> pick(const std::vector<Domain>& doms);
  bool concrete_ok(const std::vector<u64>& assign, const GoalCheck& goal);
  SolveStatus search(std::vector<Split>& splits, const GoalCheck& goal,
                     SolveResult& out);

  const ExprArena& arena_;
  u32 budget_;
  u32 splits_used_ = 0;
  std::vector<Split> constraints_;
  std::vector<ExprId> support_inputs_;  // node ids of kInput leaves to split
};

}  // namespace ptstore::analysis::symexec
