#include "analysis/symexec/path.h"

#include <algorithm>
#include <utility>

#include "analysis/symexec/slice.h"
#include "analysis/taint.h"

namespace ptstore::analysis::symexec {

namespace {

using isa::Inst;
using isa::Op;

constexpr unsigned kRegRa = 1;
constexpr unsigned kRegA0 = 10;

/// Distinctive secret sentinel for replay: a tainted witness pokes this
/// value into the secret's home cell and the replayed escape carries it.
u64 secret_sentinel(InputId id) {
  return 0x5EC7'E700'0000'0000ull | (static_cast<u64>(id) << 4);
}

struct MemOpInfo {
  u8 size = 8;
  bool sign = false;
};

MemOpInfo load_info(Op op) {
  switch (op) {
    case Op::kLb: return {1, true};
    case Op::kLbu: return {1, false};
    case Op::kLh: return {2, true};
    case Op::kLhu: return {2, false};
    case Op::kLw: return {4, true};
    case Op::kLwu: return {4, false};
    case Op::kLrW: return {4, true};
    default: return {8, false};  // ld / ld.pt / lr.d
  }
}

u8 store_size(Op op) {
  switch (op) {
    case Op::kSb: return 1;
    case Op::kSh: return 2;
    case Op::kSw: return 4;
    case Op::kScW: return 4;
    default: return 8;  // sd / sd.pt / sc.d / amo*.d
  }
}

bool ranges_overlap(u64 a, u64 alen, u64 b, u64 blen) {
  return a < b + blen && b < a + alen;
}

}  // namespace

PathExplorer::PathExplorer(const Image& img, const Cfg& cfg,
                           const WitnessBudget& budget)
    : img_(img), cfg_(cfg), budget_(budget) {}

void PathExplorer::truncate(ExploreResult& result, const std::string& why) {
  result.truncated = true;
  if (result.truncation_reason.empty()) result.truncation_reason = why;
}

ExprId PathExplorer::reg(PathState& st, unsigned r) {
  if (r == 0) return arena_.constant(0);
  if (st.regs[r] == kNoExpr) st.regs[r] = arena_.input(InputOrigin::kReg, r);
  return st.regs[r];
}

void PathExplorer::set_reg(PathState& st, unsigned r, ExprId v, TaintSet t) {
  if (r == 0) return;
  st.regs[r] = v;
  st.taint[r] = t;
}

ExprId PathExplorer::effective_address(PathState& st, const Inst& in) {
  const ExprId base = reg(st, in.rs1);
  if (in.is_amo()) return base;  // AMO/LR/SC have no displacement
  return arena_.binary(ExprOp::kAdd, base, arena_.constant(in.imm));
}

ExprId PathExplorer::do_load(PathState& st, ExprId addr, u8 size,
                             bool sign_extend, TaintSet* taint_out) {
  const u64 mask = size >= 8 ? ~u64{0} : (u64{1} << (size * 8)) - 1;
  auto extend = [&](ExprId raw) {
    if (!sign_extend || size >= 8) return raw;
    if (size == 4) return arena_.unary(ExprOp::kSextW, raw);
    const u64 sh = 64 - size * 8;
    return arena_.binary(
        ExprOp::kShra,
        arena_.binary(ExprOp::kShl, raw, arena_.constant(sh)),
        arena_.constant(sh));
  };

  if (arena_.is_const(addr)) {
    const u64 a = arena_.const_value(addr);
    // Forward from the newest store that provably hits this cell; stop at
    // the first store that *may* alias without matching exactly.
    bool hazard = false;
    for (auto it = st.stores.rbegin(); it != st.stores.rend(); ++it) {
      if (!it->addr_const) {
        hazard = true;
        break;
      }
      if (it->addr == a && it->size == size) {
        const ExprId raw =
            size >= 8 ? it->value
                      : arena_.binary(ExprOp::kAnd, it->value,
                                      arena_.constant(mask));
        if (taint_out != nullptr) {
          TaintSet t = static_cast<TaintSet>(it->taint | kTaintSymMem);
          if (flow_ != nullptr)
            t = static_cast<TaintSet>(
                t | flow_->secret_taint(AbsVal::exact(a)));
          *taint_out = t;
        }
        return extend(raw);
      }
      if (ranges_overlap(it->addr, it->size, a, size)) {
        hazard = true;
        break;
      }
    }
    if (!hazard) {
      for (const LoadCacheEntry& e : st.load_cache) {
        if (e.addr == a && e.size == size) {
          if (taint_out != nullptr)
            *taint_out = static_cast<TaintSet>(
                kTaintSymMem |
                (flow_ != nullptr ? flow_->secret_taint(AbsVal::exact(a))
                                  : 0));
          return extend(e.value);
        }
      }
    }
    const ExprId in_expr = arena_.input(InputOrigin::kMem, 0, addr);
    const InputId in_id = arena_.node(in_expr).input;
    TaintSet t = kTaintSymMem;
    if (flow_ != nullptr) {
      t = static_cast<TaintSet>(t | flow_->secret_taint(AbsVal::exact(a)));
      if ((t & kSecretBits) != 0) {
        arena_.input_info(in_id).preferred = secret_sentinel(in_id) & mask;
        arena_.input_info(in_id).has_preferred = true;
      }
    }
    if (taint_out != nullptr) *taint_out = t;
    if (size < 8)
      st.constraints.push_back({in_expr, Domain::range(0, mask)});
    st.cells.push_back({in_id, true, a, addr, size});
    if (hazard)
      st.has_symbolic_load = true;  // aliasing: replay may disagree
    else
      st.load_cache.push_back({a, size, in_expr});
    return extend(in_expr);
  }

  // Symbolic address: fresh input each time (over-approximate memory).
  st.has_symbolic_load = true;
  const ExprId in_expr = arena_.input(InputOrigin::kMem, 0, addr);
  const InputId in_id = arena_.node(in_expr).input;
  if (size < 8) st.constraints.push_back({in_expr, Domain::range(0, mask)});
  st.cells.push_back({in_id, false, 0, addr, size});
  if (taint_out != nullptr) *taint_out = kTaintSymMem;
  return extend(in_expr);
}

void PathExplorer::do_store(PathState& st, ExprId addr, ExprId value, u8 size,
                            TaintSet value_taint) {
  StoreRec rec;
  rec.addr_const = arena_.is_const(addr);
  rec.addr = rec.addr_const ? arena_.const_value(addr) : 0;
  rec.addr_expr = addr;
  rec.value = value;
  rec.size = size;
  rec.taint = value_taint;
  if (rec.addr_const) {
    // Invalidate cached loads this store may feed differently now.
    st.load_cache.erase(
        std::remove_if(st.load_cache.begin(), st.load_cache.end(),
                       [&](const LoadCacheEntry& e) {
                         return ranges_overlap(e.addr, e.size, rec.addr,
                                               rec.size);
                       }),
        st.load_cache.end());
    if (flow_ != nullptr && flow_->cred_end > flow_->cred_base &&
        rec.addr >= flow_->cred_base && rec.addr < flow_->cred_end)
      st.cred_written = true;
  } else {
    st.load_cache.clear();  // unknown target: no cached load is safe
  }
  st.stores.push_back(rec);
}

void PathExplorer::note_call_target(PathState& st, u64 target) {
  const Symbol* sym = img_.symbol_at(target);
  if (sym == nullptr) return;
  if (lint_ != nullptr) {
    for (const std::string& name : lint_->token_validate_symbols)
      if (sym->name == name) st.validated = true;
  }
  if (flow_ != nullptr) {
    for (const std::string& name : flow_->mediation_symbols)
      if (sym->name == name) st.mediated = true;
  }
}

bool PathExplorer::step(PathState& st, std::vector<PathState>& stack,
                        ExploreResult& result) {
  const Inst in = img_.inst_at(st.pc);
  const u64 pc = st.pc;
  st.trace.push_back(pc);
  ++st.steps;
  auto C = [&](u64 v) { return arena_.constant(v); };

  // Taint transfer first (reads the pre-instruction register taints).
  const TaintSet rd_taint = taint_after(in, st.taint);

  switch (in.op) {
    case Op::kIllegal:
      return false;

    case Op::kLui:
      set_reg(st, in.rd, C(static_cast<u64>(in.imm)), 0);
      break;
    case Op::kAuipc:
      set_reg(st, in.rd, C(pc + static_cast<u64>(in.imm)), 0);
      break;

    // ---- register-register / register-immediate ALU ----
    case Op::kAddi:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kAdd, reg(st, in.rs1), C(in.imm)),
              rd_taint);
      break;
    case Op::kSlti:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kLts, reg(st, in.rs1), C(in.imm)),
              rd_taint);
      break;
    case Op::kSltiu:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kLtu, reg(st, in.rs1), C(in.imm)),
              rd_taint);
      break;
    case Op::kXori:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kXor, reg(st, in.rs1), C(in.imm)),
              rd_taint);
      break;
    case Op::kOri:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kOr, reg(st, in.rs1), C(in.imm)),
              rd_taint);
      break;
    case Op::kAndi:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kAnd, reg(st, in.rs1), C(in.imm)),
              rd_taint);
      break;
    case Op::kSlli:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kShl, reg(st, in.rs1), C(in.imm & 63)),
              rd_taint);
      break;
    case Op::kSrli:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kShrl, reg(st, in.rs1), C(in.imm & 63)),
              rd_taint);
      break;
    case Op::kSrai:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kShra, reg(st, in.rs1), C(in.imm & 63)),
              rd_taint);
      break;
    case Op::kAdd:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kAdd, reg(st, in.rs1), reg(st, in.rs2)),
              rd_taint);
      break;
    case Op::kSub:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kSub, reg(st, in.rs1), reg(st, in.rs2)),
              rd_taint);
      break;
    case Op::kSll:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kShl, reg(st, in.rs1),
                            arena_.binary(ExprOp::kAnd, reg(st, in.rs2),
                                          C(63))),
              rd_taint);
      break;
    case Op::kSlt:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kLts, reg(st, in.rs1), reg(st, in.rs2)),
              rd_taint);
      break;
    case Op::kSltu:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kLtu, reg(st, in.rs1), reg(st, in.rs2)),
              rd_taint);
      break;
    case Op::kXor:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kXor, reg(st, in.rs1), reg(st, in.rs2)),
              rd_taint);
      break;
    case Op::kSrl:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kShrl, reg(st, in.rs1),
                            arena_.binary(ExprOp::kAnd, reg(st, in.rs2),
                                          C(63))),
              rd_taint);
      break;
    case Op::kSra:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kShra, reg(st, in.rs1),
                            arena_.binary(ExprOp::kAnd, reg(st, in.rs2),
                                          C(63))),
              rd_taint);
      break;
    case Op::kOr:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kOr, reg(st, in.rs1), reg(st, in.rs2)),
              rd_taint);
      break;
    case Op::kAnd:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kAnd, reg(st, in.rs1), reg(st, in.rs2)),
              rd_taint);
      break;

    // ---- 32-bit (word) ALU ----
    case Op::kAddiw:
      set_reg(st, in.rd,
              arena_.unary(ExprOp::kSextW,
                           arena_.binary(ExprOp::kAdd, reg(st, in.rs1),
                                         C(in.imm))),
              rd_taint);
      break;
    case Op::kSlliw:
      set_reg(st, in.rd,
              arena_.unary(ExprOp::kSextW,
                           arena_.binary(ExprOp::kShl, reg(st, in.rs1),
                                         C(in.imm & 31))),
              rd_taint);
      break;
    case Op::kSrliw:
      set_reg(st, in.rd,
              arena_.unary(
                  ExprOp::kSextW,
                  arena_.binary(ExprOp::kShrl,
                                arena_.binary(ExprOp::kAnd, reg(st, in.rs1),
                                              C(0xFFFFFFFFu)),
                                C(in.imm & 31))),
              rd_taint);
      break;
    case Op::kSraiw:
      set_reg(st, in.rd,
              arena_.unary(
                  ExprOp::kSextW,
                  arena_.binary(ExprOp::kShra,
                                arena_.unary(ExprOp::kSextW, reg(st, in.rs1)),
                                C(in.imm & 31))),
              rd_taint);
      break;
    case Op::kAddw:
      set_reg(st, in.rd,
              arena_.unary(ExprOp::kSextW,
                           arena_.binary(ExprOp::kAdd, reg(st, in.rs1),
                                         reg(st, in.rs2))),
              rd_taint);
      break;
    case Op::kSubw:
      set_reg(st, in.rd,
              arena_.unary(ExprOp::kSextW,
                           arena_.binary(ExprOp::kSub, reg(st, in.rs1),
                                         reg(st, in.rs2))),
              rd_taint);
      break;
    case Op::kSllw:
      set_reg(st, in.rd,
              arena_.unary(ExprOp::kSextW,
                           arena_.binary(ExprOp::kShl, reg(st, in.rs1),
                                         arena_.binary(ExprOp::kAnd,
                                                       reg(st, in.rs2),
                                                       C(31)))),
              rd_taint);
      break;
    case Op::kSrlw:
      set_reg(st, in.rd,
              arena_.unary(
                  ExprOp::kSextW,
                  arena_.binary(ExprOp::kShrl,
                                arena_.binary(ExprOp::kAnd, reg(st, in.rs1),
                                              C(0xFFFFFFFFu)),
                                arena_.binary(ExprOp::kAnd, reg(st, in.rs2),
                                              C(31)))),
              rd_taint);
      break;
    case Op::kSraw:
      set_reg(st, in.rd,
              arena_.unary(
                  ExprOp::kSextW,
                  arena_.binary(ExprOp::kShra,
                                arena_.unary(ExprOp::kSextW, reg(st, in.rs1)),
                                arena_.binary(ExprOp::kAnd, reg(st, in.rs2),
                                              C(31)))),
              rd_taint);
      break;

    case Op::kMul:
      set_reg(st, in.rd,
              arena_.binary(ExprOp::kMul, reg(st, in.rs1), reg(st, in.rs2)),
              rd_taint);
      break;
    case Op::kMulw:
      set_reg(st, in.rd,
              arena_.unary(ExprOp::kSextW,
                           arena_.binary(ExprOp::kMul, reg(st, in.rs1),
                                         reg(st, in.rs2))),
              rd_taint);
      break;
    case Op::kMulh:
    case Op::kMulhsu:
    case Op::kMulhu:
    case Op::kDiv:
    case Op::kDivu:
    case Op::kRem:
    case Op::kRemu:
    case Op::kDivw:
    case Op::kDivuw:
    case Op::kRemw:
    case Op::kRemuw:
      // Unmodeled arithmetic: havoc the destination.
      set_reg(st, in.rd, arena_.input(InputOrigin::kHavoc), rd_taint);
      break;

    // ---- memory ----
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLd:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kLwu:
    case Op::kLdPt: {
      const MemOpInfo info = load_info(in.op);
      const ExprId ea = effective_address(st, in);
      TaintSet t = 0;
      const ExprId v = do_load(st, ea, info.size, info.sign, &t);
      set_reg(st, in.rd, v, t);
      break;
    }
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kSd:
    case Op::kSdPt: {
      const ExprId ea = effective_address(st, in);
      do_store(st, ea, reg(st, in.rs2), store_size(in.op),
               st.taint[in.rs2]);
      break;
    }

    // ---- atomics: load + store through rs1, no displacement ----
    case Op::kLrW:
    case Op::kLrD: {
      const MemOpInfo info = load_info(in.op);
      TaintSet t = 0;
      const ExprId v =
          do_load(st, reg(st, in.rs1), info.size, info.sign, &t);
      set_reg(st, in.rd, v, t);
      break;
    }
    case Op::kScW:
    case Op::kScD: {
      // Modeled as always succeeding (single-hart replay honours this).
      do_store(st, reg(st, in.rs1), reg(st, in.rs2), store_size(in.op),
               st.taint[in.rs2]);
      set_reg(st, in.rd, C(0), 0);
      break;
    }
    case Op::kAmoSwapW:
    case Op::kAmoAddW:
    case Op::kAmoXorW:
    case Op::kAmoAndW:
    case Op::kAmoOrW:
    case Op::kAmoSwapD:
    case Op::kAmoAddD:
    case Op::kAmoXorD:
    case Op::kAmoAndD:
    case Op::kAmoOrD: {
      const bool word = in.op >= Op::kAmoSwapW && in.op <= Op::kAmoOrW;
      const u8 size = word ? 4 : 8;
      const ExprId addr = reg(st, in.rs1);
      TaintSet t = 0;
      const ExprId loaded = do_load(st, addr, size, word, &t);
      ExprOp aop = ExprOp::kAdd;
      bool swap = false;
      switch (in.op) {
        case Op::kAmoSwapW: case Op::kAmoSwapD: swap = true; break;
        case Op::kAmoAddW: case Op::kAmoAddD: aop = ExprOp::kAdd; break;
        case Op::kAmoXorW: case Op::kAmoXorD: aop = ExprOp::kXor; break;
        case Op::kAmoAndW: case Op::kAmoAndD: aop = ExprOp::kAnd; break;
        default: aop = ExprOp::kOr; break;
      }
      const ExprId stored =
          swap ? reg(st, in.rs2)
               : arena_.binary(aop, loaded, reg(st, in.rs2));
      do_store(st, addr, stored, size,
               static_cast<TaintSet>(t | st.taint[in.rs2]));
      set_reg(st, in.rd, loaded, t);
      break;
    }

    // ---- control flow ----
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu: {
      ExprOp cmp = ExprOp::kEq;
      u64 taken_req = 1;
      switch (in.op) {
        case Op::kBeq: cmp = ExprOp::kEq; taken_req = 1; break;
        case Op::kBne: cmp = ExprOp::kEq; taken_req = 0; break;
        case Op::kBlt: cmp = ExprOp::kLts; taken_req = 1; break;
        case Op::kBge: cmp = ExprOp::kLts; taken_req = 0; break;
        case Op::kBltu: cmp = ExprOp::kLtu; taken_req = 1; break;
        default: cmp = ExprOp::kLtu; taken_req = 0; break;  // bgeu
      }
      const ExprId cond =
          arena_.binary(cmp, reg(st, in.rs1), reg(st, in.rs2));
      const u64 taken_pc = pc + static_cast<u64>(in.imm);
      const u64 fall_pc = pc + 4;

      auto prunable = [&](u64 target) {
        if (st.call_depth != 0) return false;
        const BasicBlock* bb = cfg_.block_containing(target);
        if (bb == nullptr) return false;
        return slice_.count(bb->start) == 0 && wild_.count(bb->start) == 0;
      };
      auto feasible = [&](u64 req) {
        return !arena_.is_const(cond) || arena_.const_value(cond) == req;
      };

      const bool want_taken = feasible(taken_req) && !prunable(taken_pc);
      const bool want_fall = feasible(1 - taken_req) && !prunable(fall_pc);
      if (!want_taken && !want_fall) return false;
      if (want_taken && want_fall) {
        // Fork; continue with the goal-directed side when only one is in
        // the slice.
        const BasicBlock* tb = cfg_.block_containing(taken_pc);
        const bool prefer_taken =
            tb != nullptr && slice_.count(tb->start) != 0;
        PathState other = st;
        if (prefer_taken) {
          other.pc = fall_pc;
          if (!arena_.is_const(cond))
            other.constraints.push_back(
                {cond, Domain::exact(1 - taken_req)});
          st.pc = taken_pc;
          if (!arena_.is_const(cond))
            st.constraints.push_back({cond, Domain::exact(taken_req)});
        } else {
          other.pc = taken_pc;
          if (!arena_.is_const(cond))
            other.constraints.push_back({cond, Domain::exact(taken_req)});
          st.pc = fall_pc;
          if (!arena_.is_const(cond))
            st.constraints.push_back({cond, Domain::exact(1 - taken_req)});
        }
        stack.push_back(std::move(other));
      } else {
        const u64 req = want_taken ? taken_req : 1 - taken_req;
        st.pc = want_taken ? taken_pc : fall_pc;
        if (!arena_.is_const(cond))
          st.constraints.push_back({cond, Domain::exact(req)});
      }
      return true;
    }

    case Op::kJal: {
      const u64 target = pc + static_cast<u64>(in.imm);
      if (in.rd != 0) set_reg(st, in.rd, C(pc + 4), 0);
      note_call_target(st, target);
      if (!img_.contains(target)) return false;  // leaves the image
      if (in.rd != 0) ++st.call_depth;
      st.pc = target;
      return true;
    }
    case Op::kJalr: {
      const ExprId target_expr = arena_.binary(
          ExprOp::kAnd,
          arena_.binary(ExprOp::kAdd, reg(st, in.rs1), C(in.imm)),
          C(~u64{1}));
      const bool is_ret =
          in.rd == 0 && in.rs1 == kRegRa && in.imm == 0;
      if (!arena_.is_const(target_expr)) {
        if (is_ret && st.call_depth == 0) return false;  // scope exit
        truncate(result, "unresolved indirect jump");
        return false;
      }
      const u64 target = arena_.const_value(target_expr);
      if (in.rd != 0) set_reg(st, in.rd, C(pc + 4), 0);
      note_call_target(st, target);
      if (!img_.contains(target)) return false;
      if (in.rd != 0)
        ++st.call_depth;
      else if (is_ret && st.call_depth > 0)
        --st.call_depth;
      st.pc = target;
      return true;
    }

    // ---- CSR: havoc the old value, track nothing else ----
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci:
      if (in.rd != 0)
        set_reg(st, in.rd, arena_.input(InputOrigin::kHavoc), 0);
      break;

    case Op::kFence:
    case Op::kFenceI:
    case Op::kSfenceVma:
      break;

    case Op::kEcall:
    case Op::kEbreak:
    case Op::kWfi:
    case Op::kMret:
    case Op::kSret:
      return false;  // leaves the modeled instruction stream
  }

  st.pc = pc + 4;
  return true;
}

void PathExplorer::try_goal(PathState& st, const Goal& goal,
                            ExploreResult& result) {
  const Inst in = img_.inst_at(goal.pc);

  switch (goal.flag) {
    case Goal::FlagReq::kValidatedFalse:
      if (st.validated) return;
      break;
    case Goal::FlagReq::kMediatedFalse:
      if (st.mediated) return;
      break;
    case Goal::FlagReq::kCredWrittenFalse:
      if (st.cred_written) return;
      break;
    case Goal::FlagReq::kNone:
      break;
  }

  ExprId ea = kNoExpr;
  ExprId value = kNoExpr;
  u8 size = 8;

  if (goal.check == WitnessCheck::kStore || goal.check == WitnessCheck::kLoad) {
    ea = effective_address(st, in);
    if (in.is_store() || in.op == Op::kSdPt) {
      size = store_size(in.op);
      value = reg(st, in.rs2);
    } else if (in.is_amo()) {
      size = store_size(in.op);
      value = reg(st, in.rs2);
    } else {
      size = load_info(in.op).size;
    }
  } else if (goal.check == WitnessCheck::kSatp) {
    if (in.op == Op::kCsrrw)
      value = reg(st, in.rs1);
    else if (in.op == Op::kCsrrwi)
      value = arena_.constant(in.rs1);  // uimm lives in the rs1 field
    else
      value = arena_.input(InputOrigin::kHavoc);  // csrrs/c: old | bits
  } else if (goal.check == WitnessCheck::kCallArg) {
    // Find a tainted argument register.
    unsigned arg_reg = 0;
    for (unsigned r = kRegA0; r < kRegA0 + 8; ++r) {
      if ((st.taint[r] & kSecretBits) != 0) {
        arg_reg = r;
        break;
      }
    }
    if (arg_reg == 0) {
      if (st.has_symbolic_load)
        truncate(result, "taint premise lost through symbolic load");
      return;
    }
    ea = arena_.constant(arg_reg);  // register index, not an address
    value = reg(st, arg_reg);
  }

  if (goal.value_taint_mask != 0) {
    const TaintSet t =
        (in.is_store() || in.is_amo() || in.op == Op::kSdPt)
            ? st.taint[in.rs2]
            : 0;
    if ((t & goal.value_taint_mask) == 0) {
      if (st.has_symbolic_load)
        truncate(result, "taint premise lost through symbolic load");
      return;
    }
  }

  // Memory provenance of the EA base register, for the R2 fallback.
  bool mem_derived_ea = false;
  if (goal.allow_mem_derived_ea &&
      (goal.check == WitnessCheck::kStore ||
       goal.check == WitnessCheck::kLoad))
    mem_derived_ea = (st.taint[in.rs1] & kTaintSymMem) != 0;

  solve_goal(st, goal, ea, value, size, mem_derived_ea, result);
}

bool PathExplorer::solve_goal(PathState& st, const Goal& goal, ExprId ea,
                              ExprId value, u8 access_size,
                              bool mem_derived_ea, ExploreResult& result) {
  const bool constrain_ea =
      ea != kNoExpr && goal.check != WitnessCheck::kCallArg &&
      !goal.ea_in.empty();

  auto run = [&](const std::pair<u64, u64>* range) -> SolveStatus {
    Solver solver(arena_, budget_.solver_splits);
    for (const PathConstraint& c : st.constraints)
      solver.require(c.node, c.dom);
    if (ea != kNoExpr && goal.check != WitnessCheck::kCallArg) {
      if (range != nullptr)
        solver.require_in(ea, range->first, range->second - 1);
      if (access_size > 1) {
        Domain align = Domain::top();
        align.meet_known(access_size - 1, 0);
        solver.require(ea, align);
      }
      solver.note_support(ea);
    }
    if (value != kNoExpr) solver.note_support(value);
    Solver::GoalCheck check;
    if (goal.concrete_ok) {
      check = [&](const std::vector<u64>& assign) {
        const u64 cea = ea != kNoExpr ? arena_.eval(ea, assign) : 0;
        const u64 cval = value != kNoExpr ? arena_.eval(value, assign) : 0;
        return goal.concrete_ok(cea, cval);
      };
    }
    SolveResult r = solver.solve(check);
    if (r.status == SolveStatus::kSat &&
        !build_witness(st, goal, ea, value, r.assign, result))
      return SolveStatus::kBudget;  // SAT but unmaterialisable: not a refutation
    return r.status;
  };

  bool budget_hit = false;
  if (constrain_ea) {
    for (const auto& range : goal.ea_in) {
      if (range.second <= range.first) continue;
      const SolveStatus s = run(&range);
      if (s == SolveStatus::kSat && result.found) return true;
      if (s == SolveStatus::kBudget) budget_hit = true;
    }
    // R2 fallback: a memory-derived pt-insn pointer witnesses the
    // diagnostic even when it cannot be steered outside the region — the
    // static analysis could not confine an attacker-planted pointer. Only
    // used when every replay-friendly disjunct is UNSAT.
    if (mem_derived_ea && !budget_hit) {
      const SolveStatus s = run(nullptr);
      if (s == SolveStatus::kSat && result.found) return true;
      if (s == SolveStatus::kBudget) budget_hit = true;
    }
  } else {
    const SolveStatus s = run(nullptr);
    if (s == SolveStatus::kSat && result.found) return true;
    if (s == SolveStatus::kBudget) budget_hit = true;
  }
  if (budget_hit) truncate(result, "solver budget");
  return false;
}

bool PathExplorer::build_witness(PathState& st, const Goal& goal, ExprId ea,
                                 ExprId value,
                                 const std::vector<u64>& assign,
                                 ExploreResult& result) {
  // Inputs that decide the witness: path condition, goal EA/value, every
  // store (they execute during replay) and load address on the path.
  std::vector<InputId> used;
  for (const PathConstraint& c : st.constraints)
    arena_.collect_inputs(c.node, used);
  if (ea != kNoExpr) arena_.collect_inputs(ea, used);
  if (value != kNoExpr) arena_.collect_inputs(value, used);
  for (const StoreRec& rec : st.stores) {
    arena_.collect_inputs(rec.addr_expr, used);
    arena_.collect_inputs(rec.value, used);
  }
  for (const CellRec& cell : st.cells)
    if (!cell.addr_const) arena_.collect_inputs(cell.addr_expr, used);

  // A havocked value (CSR read, div result) steering the path condition or
  // the goal cannot be reproduced by poking state: give up gracefully.
  std::vector<InputId> support;
  for (const PathConstraint& c : st.constraints)
    arena_.collect_inputs(c.node, support);
  if (ea != kNoExpr) arena_.collect_inputs(ea, support);
  if (value != kNoExpr) arena_.collect_inputs(value, support);
  for (InputId id : support) {
    if (arena_.input_info(id).origin == InputOrigin::kHavoc) {
      truncate(result, "havocked value steers the witness");
      return false;
    }
  }

  WitnessTrace t;
  t.diag_pc = goal.pc;
  t.rule_id = goal.rule_id;
  t.kind_name = goal.kind_name;
  t.check = goal.check;
  const Inst in = img_.inst_at(goal.pc);
  t.pt_access = in.is_pt_access();
  t.ea = ea != kNoExpr ? arena_.eval(ea, assign) : 0;
  t.value = value != kNoExpr ? arena_.eval(value, assign) : 0;

  for (InputId id : used) {
    const InputInfo& info = arena_.input_info(id);
    if (info.origin != InputOrigin::kReg) continue;
    const u64 v = id < assign.size() ? assign[id] : 0;
    for (const auto& [r, existing] : t.init_regs)
      if (r == info.reg && existing != v) return false;  // conflicting mints
    t.init_regs.push_back({info.reg, v});
  }

  // Materialise memory cells, rejecting aliasing hazards: a cell replay
  // pokes must not be overwritten by a path store before its load reads it
  // (store order is not tracked, so any overlap rejects).
  for (const CellRec& cell : st.cells) {
    bool cell_used = false;
    for (InputId id : used) cell_used = cell_used || id == cell.input;
    if (!cell_used) continue;
    const u64 addr = cell.addr_const
                         ? cell.addr
                         : arena_.eval(cell.addr_expr, assign);
    const u64 v = cell.input < assign.size() ? assign[cell.input] : 0;
    for (const WitnessMemCell& existing : t.mem_cells) {
      if (ranges_overlap(existing.addr, existing.size, addr, cell.size)) {
        if (existing.addr != addr || existing.size != cell.size ||
            existing.value != v) {
          truncate(result, "conflicting witness memory cells");
          return false;
        }
      }
    }
    for (const StoreRec& rec : st.stores) {
      const u64 saddr =
          rec.addr_const ? rec.addr : arena_.eval(rec.addr_expr, assign);
      if (ranges_overlap(saddr, rec.size, addr, cell.size)) {
        truncate(result, "path store aliases a witness memory cell");
        return false;
      }
    }
    bool dup = false;
    for (const WitnessMemCell& existing : t.mem_cells)
      dup = dup || (existing.addr == addr && existing.size == cell.size);
    if (!dup) t.mem_cells.push_back({addr, v, cell.size});
  }

  t.path = st.trace;
  t.path.push_back(goal.pc);

  result.witness = std::move(t);
  result.found = true;
  return true;
}

ExploreResult PathExplorer::explore(const Goal& goal, u64 entry_pc) {
  ExploreResult result;
  arena_ = ExprArena();
  slice_ = backward_block_slice(cfg_, goal.pc);
  wild_ = wild_block_slice(cfg_, img_);
  if (!img_.contains(entry_pc)) return result;

  // Vacuously unreachable from this entry?
  const BasicBlock* entry_bb = cfg_.block_containing(entry_pc);
  if (entry_bb != nullptr && slice_.count(entry_bb->start) == 0 &&
      wild_.count(entry_bb->start) == 0)
    return result;

  std::vector<PathState> stack;
  PathState init;
  init.pc = entry_pc;
  init.regs.fill(kNoExpr);
  init.taint.fill(0);
  stack.push_back(std::move(init));

  while (!stack.empty() && !result.found) {
    PathState st = std::move(stack.back());
    stack.pop_back();
    bool alive = true;
    while (alive && !result.found) {
      if (st.steps >= budget_.max_steps) {
        truncate(result, "per-path step budget");
        break;
      }
      if (!img_.contains(st.pc)) break;  // left the image
      if (st.pc == goal.pc) {
        try_goal(st, goal, result);
        if (result.found) break;
      }
      alive = step(st, stack, result);
    }
    ++result.paths;
    result.max_depth = std::max(result.max_depth, st.steps);
    if (!result.found && result.paths >= budget_.max_paths &&
        !stack.empty()) {
      truncate(result, "path budget");
      break;
    }
  }
  return result;
}

}  // namespace ptstore::analysis::symexec
