// ptsym driver: turn ptlint/ptflow violation diagnostics into one of three
// verdicts per diagnostic, by bounded symbolic execution over the image's
// CFG (analysis/symexec/path.h):
//
//   WITNESSED            — a SAT path to the flagged pc was found and
//                          materialised into a WitnessTrace; the caller must
//                          still replay it on the concrete System (see
//                          attacks/witness_replay.h) before printing the
//                          verdict.
//   BOUNDED-UNREACHABLE  — every path from every analysis root was explored
//                          to completion (no budget cut, no unresolved
//                          indirect jump, no irreplayable havoc) and none
//                          satisfies the goal. A sound unreachability claim
//                          *within the executor's memory model*.
//   UNKNOWN              — anything was truncated. No claim either way.
//
// Roots: the image base, the config's extra roots, and every symbol — a
// witness from any root counts; unreachability must hold from all of them.
#pragma once

#include <vector>

#include "analysis/ptflow.h"
#include "analysis/ptlint.h"
#include "analysis/symexec/path.h"
#include "analysis/symexec/witness.h"

namespace ptstore::analysis::symexec {

/// Refine every violation-severity diagnostic of a ptlint report. The
/// returned vector is parallel to rep.violations() order.
std::vector<SymVerdict> symexec_lint(const Image& img, const LintReport& rep,
                                     const LintConfig& cfg,
                                     const WitnessBudget& budget = {});

/// Refine every violation-severity diagnostic of a ptflow report.
std::vector<SymVerdict> symexec_flow(const Image& img, const FlowReport& rep,
                                     const FlowSpec& spec,
                                     const WitnessBudget& budget = {});

}  // namespace ptstore::analysis::symexec
