#include "analysis/symexec/ptsym.h"

#include <algorithm>
#include <sstream>

#include "analysis/sarif.h"

namespace ptstore::analysis::symexec {

namespace {

using isa::Inst;
using isa::Op;

/// Where a "store outside the secure region" witness may land: DRAM below
/// the region first (directly backed during replay), then a window just
/// above it (above-region DRAM or, past the DRAM top, a replay-mapped
/// device page).
std::vector<std::pair<u64, u64>> outside_secure(u64 sr_base, u64 sr_end) {
  std::vector<std::pair<u64, u64>> out;
  if (sr_base > kDramBase) out.push_back({kDramBase, sr_base});
  out.push_back({sr_end, sr_end + MiB(256)});
  return out;
}

std::vector<u64> roots_for(const Image& img, const std::vector<u64>& extra) {
  std::vector<u64> roots;
  auto add = [&](u64 pc) {
    if (!img.contains(pc)) return;
    if (std::find(roots.begin(), roots.end(), pc) == roots.end())
      roots.push_back(pc);
  };
  add(img.base);
  for (u64 r : extra) add(r);
  for (const Symbol& s : img.symbols) add(s.address);
  return roots;
}

bool is_store_like(const Inst& in) {
  return in.is_store() || in.is_amo() || in.op == Op::kSdPt;
}

/// Run the goal from every root; a witness from any root wins, bounded
/// unreachability requires untruncated exhaustion from all of them.
SymVerdict refine(PathExplorer& explorer, const Goal& goal,
                  const std::vector<u64>& roots) {
  SymVerdict v;
  v.pc = goal.pc;
  v.rule_id = goal.rule_id;

  bool truncated = false;
  std::string reason;
  u32 paths = 0;
  u32 max_depth = 0;
  for (u64 root : roots) {
    ExploreResult r = explorer.explore(goal, root);
    paths += r.paths;
    max_depth = std::max(max_depth, r.max_depth);
    if (r.found) {
      v.verdict = Verdict::kWitnessed;
      v.witness = std::move(r.witness);
      v.paths_explored = paths;
      v.depth_bound = max_depth;
      std::ostringstream os;
      os << "witness path of " << v.witness->depth()
         << " instruction(s) from root 0x" << std::hex << root;
      v.detail = os.str();
      return v;
    }
    if (r.truncated) {
      truncated = true;
      if (reason.empty()) reason = r.truncation_reason;
    }
  }
  v.paths_explored = paths;
  v.depth_bound = max_depth;
  if (truncated) {
    v.verdict = Verdict::kUnknown;
    v.detail = reason;
  } else {
    v.verdict = Verdict::kBoundedUnreachable;
    std::ostringstream os;
    os << paths << " path(s) exhausted, deepest " << max_depth
       << " instruction(s)";
    v.detail = os.str();
  }
  return v;
}

}  // namespace

std::vector<SymVerdict> symexec_lint(const Image& img, const LintReport& rep,
                                     const LintConfig& cfg,
                                     const WitnessBudget& budget) {
  const Cfg graph = Cfg::build(img, cfg.extra_roots);
  PathExplorer explorer(img, graph, budget);
  explorer.set_lint_config(&cfg);
  const std::vector<u64> roots = roots_for(img, cfg.extra_roots);

  std::vector<SymVerdict> out;
  for (const Diag* d : rep.violations()) {
    Goal goal;
    goal.pc = d->pc;
    goal.rule_id = sarif_rule_id(d->kind);
    goal.kind_name = diag_kind_name(d->kind);
    const Inst in = img.inst_at(d->pc);

    switch (d->kind) {
      case DiagKind::kRegularTouchesSecure:
        goal.check = is_store_like(in) ? WitnessCheck::kStore
                                       : WitnessCheck::kLoad;
        goal.ea_in = {{cfg.sr_base, cfg.sr_end}};
        break;
      case DiagKind::kPtInsnEscapes:
        goal.check = in.op == Op::kSdPt ? WitnessCheck::kStore
                                        : WitnessCheck::kLoad;
        goal.ea_in = outside_secure(cfg.sr_base, cfg.sr_end);
        goal.allow_mem_derived_ea = true;
        break;
      case DiagKind::kSatpWriteUnvalidated:
        goal.check = WitnessCheck::kSatp;
        goal.flag = Goal::FlagReq::kValidatedFalse;
        break;
      case DiagKind::kPmpScopeViolation:
        goal.check = WitnessCheck::kPmpCsr;
        break;
      case DiagKind::kFetchFromSecure:
      case DiagKind::kJumpOutOfImage:
      case DiagKind::kIllegalInstruction:
        goal.check = WitnessCheck::kReach;
        break;
    }

    SymVerdict v = refine(explorer, goal, roots);
    v.kind_index = static_cast<unsigned>(d->kind);
    v.is_flow = false;
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<SymVerdict> symexec_flow(const Image& img, const FlowReport& rep,
                                     const FlowSpec& spec,
                                     const WitnessBudget& budget) {
  const Cfg graph = Cfg::build(img, spec.extra_roots);
  PathExplorer explorer(img, graph, budget);
  explorer.set_flow_spec(&spec);
  const std::vector<u64> roots = roots_for(img, spec.extra_roots);

  std::vector<SymVerdict> out;
  for (const FlowDiag* d : rep.violations()) {
    Goal goal;
    goal.pc = d->pc;
    goal.rule_id = sarif_rule_id(d->kind);
    goal.kind_name = flow_diag_kind_name(d->kind);

    switch (d->kind) {
      case FlowDiagKind::kSecretEscapes:
        goal.check = WitnessCheck::kStore;
        goal.ea_in = outside_secure(spec.sr_base, spec.sr_end);
        goal.value_taint_mask = kSecretBits;
        // The sanctioned home (e.g. the PCB credential field) sits outside
        // the secure region; exclude it concretely.
        goal.concrete_ok = [&spec](u64 ea, u64) {
          return !spec.sanctioned_dest(AbsVal::exact(ea));
        };
        break;
      case FlowDiagKind::kSecretToUser:
        goal.check = WitnessCheck::kStore;
        goal.ea_in = {{spec.user_base, spec.user_end}};
        goal.value_taint_mask = kSecretBits;
        break;
      case FlowDiagKind::kSecretToSink:
        goal.check = WitnessCheck::kCallArg;
        goal.arg_taint = true;
        break;
      case FlowDiagKind::kUnmediatedPtStore:
        goal.check = WitnessCheck::kStore;
        goal.ea_in = {{spec.pt_base, spec.pt_end}};
        goal.flag = Goal::FlagReq::kMediatedFalse;
        break;
      case FlowDiagKind::kCredAfterWalkable:
        goal.check = WitnessCheck::kSatp;
        goal.flag = Goal::FlagReq::kCredWrittenFalse;
        break;
      case FlowDiagKind::kUnresolvedCall:
      case FlowDiagKind::kUnconstrainedStore:
        // Notes are never violations; defensive fallthrough.
        goal.check = WitnessCheck::kReach;
        break;
    }

    SymVerdict v = refine(explorer, goal, roots);
    v.kind_index = static_cast<unsigned>(d->kind);
    v.is_flow = true;
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace ptstore::analysis::symexec
