#include "analysis/symexec/slice.h"

#include <deque>

#include "isa/inst.h"

namespace ptstore::analysis::symexec {

namespace {

/// Reverse closure over predecessor edges from `seeds`.
std::set<u64> reverse_closure(const Cfg& cfg, std::deque<u64> work) {
  std::set<u64> out(work.begin(), work.end());
  while (!work.empty()) {
    const u64 at = work.front();
    work.pop_front();
    const BasicBlock* bb = cfg.block_at(at);
    if (bb == nullptr) continue;
    for (u64 pred : bb->preds)
      if (out.insert(pred).second) work.push_back(pred);
  }
  return out;
}

}  // namespace

std::set<u64> backward_block_slice(const Cfg& cfg, u64 goal_pc) {
  const BasicBlock* goal = cfg.block_containing(goal_pc);
  if (goal == nullptr) return {};
  return reverse_closure(cfg, {goal->start});
}

std::set<u64> wild_block_slice(const Cfg& cfg, const Image& img) {
  std::deque<u64> seeds;
  for (const BasicBlock& bb : cfg.blocks()) {
    if (!bb.indirect_exit) continue;
    const u64 term_pc = bb.end - 4;
    bool is_ret = false;
    if (img.contains(term_pc)) {
      const isa::Inst term = img.inst_at(term_pc);
      is_ret = term.op == isa::Op::kJalr && term.rd == 0 && term.rs1 == 1 &&
               term.imm == 0;
    }
    if (!is_ret) seeds.push_back(bb.start);
  }
  if (seeds.empty()) return {};
  return reverse_closure(cfg, std::move(seeds));
}

}  // namespace ptstore::analysis::symexec
