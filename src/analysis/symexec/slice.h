// Backward slicing over the recovered CFG. The path explorer prunes branch
// successors that provably cannot reach the flagged pc — but only when the
// claim is sound: CFG edges over-approximate control flow except at blocks
// ending in *unresolved* indirect jumps (indirect_exit, no successors).
// Matched call/return pairs are modeled by kCall/kCallReturn edges, so a
// plain `ret` terminator is safe; any other indirect exit could jump
// anywhere, and a block that can reach one must never be pruned.
#pragma once

#include <set>

#include "analysis/cfg.h"
#include "analysis/image.h"

namespace ptstore::analysis::symexec {

/// Block starts whose block can reach (over CFG successor edges) the block
/// containing `goal_pc`. Computed as a reverse BFS over predecessor edges.
std::set<u64> backward_block_slice(const Cfg& cfg, u64 goal_pc);

/// Block starts whose block can reach a "wild" block: one with an indirect
/// exit whose terminator is not a plain `ret` (jalr zero, ra, 0). Such
/// blocks may transfer control anywhere the CFG does not model, so they
/// (and everything upstream of them) are exempt from slice pruning.
std::set<u64> wild_block_slice(const Cfg& cfg, const Image& img);

}  // namespace ptstore::analysis::symexec
