// Dynamic cross-check: replay an execution trace (cpu/tracer.h records,
// which carry pre-execution effective addresses) against ptlint's static
// classification. Any disagreement — a "provably non-secure" access that
// dynamically hit the secure region, a "provably secure" pt-access that
// escaped, or an executed pc the CFG thought unreachable — is a soundness
// contradiction in the analysis, reported verbatim.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "analysis/ptlint.h"
#include "cpu/tracer.h"

namespace ptstore::analysis {

struct CrossCheckResult {
  u64 checked = 0;       ///< Trace records whose pc lies in the image.
  u64 mem_checked = 0;   ///< Of those, memory accesses compared by address.
  u64 unknown = 0;       ///< Accesses the static side classified Unknown.
  u64 skipped = 0;       ///< Records outside the image (kernel, firmware).
  std::vector<std::string> contradictions;
  /// Unknown-site coverage: sites ptlint could not classify are exactly
  /// where the static result leans on dynamic evidence, so the cross-check
  /// reports how many of them the trace actually exercised. An unexercised
  /// Unknown site is a blind spot, not a contradiction.
  u64 unknown_sites = 0;            ///< Static kUnknown sites in the report.
  u64 unknown_sites_exercised = 0;  ///< Of those, hit by >= 1 trace record.
  std::vector<std::string> unexercised;  ///< The never-exercised sites.

  bool ok() const { return contradictions.empty(); }
  std::string format() const;
};

CrossCheckResult cross_check(const Image& img, const LintReport& report,
                             const std::deque<TraceRecord>& trace,
                             u64 sr_base, u64 sr_end);

}  // namespace ptstore::analysis
