#include "analysis/image.h"

#include <sstream>

namespace ptstore::analysis {

std::string Image::locate(u64 pc) const {
  const Symbol* best = nullptr;
  for (const Symbol& s : symbols) {
    if (s.address <= pc && (best == nullptr || s.address > best->address)) best = &s;
  }
  std::ostringstream os;
  if (best != nullptr) {
    os << best->name;
    if (pc != best->address) os << "+0x" << std::hex << pc - best->address;
  } else {
    os << "entry";
    if (pc != base) os << "+0x" << std::hex << pc - base;
  }
  return os.str();
}

const Symbol* Image::symbol_at(u64 address) const {
  for (const Symbol& s : symbols) {
    if (s.address == address) return &s;
  }
  return nullptr;
}

std::optional<u64> Image::symbol_address(const std::string& name) const {
  for (const Symbol& s : symbols) {
    if (s.name == name) return s.address;
  }
  return std::nullopt;
}

Image Image::from_assembly(const isa::AsmResult& res, u64 base) {
  Image img;
  img.base = base;
  img.words = res.words;
  img.symbols.reserve(res.symbols.size());
  for (const isa::AsmSymbol& s : res.symbols) {
    img.symbols.push_back(Symbol{s.name, s.address});
  }
  return img;
}

}  // namespace ptstore::analysis
