#include "analysis/flow_corpus.h"

#include <functional>

#include "analysis/corpus.h"
#include "isa/assembler.h"
#include "isa/csr.h"

namespace ptstore::analysis {
namespace {

using isa::Assembler;
using isa::Reg;

// Address map shared with FlowSpec::for_backend: secrets and the credential
// home sit at fixed offsets from the secure region.
u64 token_table(u64 sr_base) { return sr_base + 0x800; }
u64 domain_registry(u64 sr_base) { return sr_base + 0x1000; }
u64 mac_key(u64 sr_base) { return sr_base + 0x600; }
u64 pcb_cred(u64 sr_base) { return sr_base - MiB(1); }
/// Ordinary kernel memory: outside the secure region, every secret home,
/// and the U-mode window — the T1 escape destination.
u64 scratch(u64 sr_base) { return sr_base - 0x8000; }
/// A page-table page inside the pool (= the secure region).
u64 pt_page(u64 sr_base) { return sr_base + 0x4000; }
u64 user_page() { return kUserSpaceBase + 0x1000; }

Image build(const std::function<void(Assembler&, std::vector<Symbol>&)>& body) {
  Assembler a(kCorpusBase);
  std::vector<Symbol> symbols{{"entry", kCorpusBase}};
  body(a, symbols);
  Image img;
  img.base = kCorpusBase;
  img.words = a.finish();
  img.symbols = std::move(symbols);
  return img;
}

/// Helper function reading one doubleword from `addr` into a0. Emits the
/// body at the current position, binds `name` to it, and returns.
void emit_reader(Assembler& a, std::vector<Symbol>& symbols,
                 Assembler::Label l, const char* name, u64 addr, bool pt) {
  a.bind(l);
  a.li(Reg::kT0, addr);
  if (pt) {
    a.ld_pt(Reg::kA0, Reg::kT0, 0);
  } else {
    a.ld(Reg::kA0, Reg::kT0, 0);
  }
  a.ret();
  symbols.push_back({name, *a.label_address(l)});
}

/// A leaf function that just returns, bound to `name` (mediation gates,
/// sinks, and MAC stubs in the corpus).
void emit_leaf(Assembler& a, std::vector<Symbol>& symbols, Assembler::Label l,
               const char* name) {
  a.bind(l);
  a.ret();
  symbols.push_back({name, *a.label_address(l)});
}

}  // namespace

std::vector<FlowCorpusEntry> flow_violation_corpus(u64 sr_base, u64 sr_end) {
  (void)sr_end;
  std::vector<FlowCorpusEntry> corpus;

  // ---- ptstore trio -------------------------------------------------------

  // T1, interprocedural: a helper returns the token in a0 (ret-taint in the
  // bottom-up summary); the caller spills it to ordinary kernel memory.
  corpus.push_back(
      {"flow_ptstore_token_leak",
       "token read by a helper, stored outside the secure region by its caller",
       BackendKind::kPtstore,
       build([&](Assembler& a, std::vector<Symbol>& symbols) {
         auto reader = a.make_label();
         a.jal(Reg::kRa, reader);
         a.li(Reg::kT0, scratch(sr_base));
         a.sd(Reg::kA0, Reg::kT0, 0);
         a.ebreak();
         emit_reader(a, symbols, reader, "read_token", token_table(sr_base),
                     /*pt=*/true);
       }),
       false, FlowDiagKind::kSecretEscapes});

  // M1: a plain sd aimed at a PT-pool page. PTStore's mediation channel is
  // the pt-instructions themselves, so a regular store is never mediated.
  corpus.push_back(
      {"flow_ptstore_unmediated_store",
       "regular store into the PT pool bypassing the sd.pt channel",
       BackendKind::kPtstore,
       build([&](Assembler& a, std::vector<Symbol>&) {
         a.li(Reg::kT0, pt_page(sr_base));
         a.sd(Reg::kZero, Reg::kT0, 0);
         a.ebreak();
       }),
       false, FlowDiagKind::kUnmediatedPtStore});

  // M2: bind_root makes the root walkable (satp) before the token lands in
  // the table — the PT-Reuse window the ordering rule closes.
  corpus.push_back(
      {"flow_ptstore_cred_after_walkable",
       "bind_root writes satp before committing the token binding",
       BackendKind::kPtstore,
       build([&](Assembler& a, std::vector<Symbol>& symbols) {
         auto bind = a.make_label();
         a.jal(Reg::kRa, bind);
         a.ebreak();
         a.bind(bind);
         a.li(Reg::kT1, pt_page(sr_base) >> 12);
         a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
         a.li(Reg::kT0, token_table(sr_base));
         a.li(Reg::kT2, 0x5A5A);
         a.sd_pt(Reg::kT2, Reg::kT0, 0);
         a.ret();
         symbols.push_back({"bind_root", *a.label_address(bind)});
       }),
       false, FlowDiagKind::kCredAfterWalkable});

  // ---- dpti trio ----------------------------------------------------------

  // T2: a registered domain root copied into a U-mode-readable page.
  corpus.push_back(
      {"flow_dpti_root_leak",
       "domain-registry root copied to a U-mode-readable page",
       BackendKind::kDpti,
       build([&](Assembler& a, std::vector<Symbol>&) {
         a.li(Reg::kT0, domain_registry(sr_base));
         a.ld(Reg::kA0, Reg::kT0, 0);
         a.li(Reg::kT1, user_page());
         a.sd(Reg::kA0, Reg::kT1, 0);
         a.ebreak();
       }),
       false, FlowDiagKind::kSecretToUser});

  // M1: a PT-pool store on a path that never entered the PT domain.
  corpus.push_back(
      {"flow_dpti_unmediated_store",
       "PT-pool store without a dominating dpti_domain_enter call",
       BackendKind::kDpti,
       build([&](Assembler& a, std::vector<Symbol>&) {
         a.li(Reg::kT0, pt_page(sr_base));
         a.sd(Reg::kZero, Reg::kT0, 0);
         a.ebreak();
       }),
       false, FlowDiagKind::kUnmediatedPtStore});

  // M2: the root reaches satp before it is registered in the domain.
  corpus.push_back(
      {"flow_dpti_register_after_walkable",
       "bind_root installs the root before registering it in the domain",
       BackendKind::kDpti,
       build([&](Assembler& a, std::vector<Symbol>& symbols) {
         auto bind = a.make_label();
         auto enter = a.make_label();
         a.jal(Reg::kRa, bind);
         a.ebreak();
         a.bind(bind);
         a.li(Reg::kT1, pt_page(sr_base) >> 12);
         a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
         a.jal(Reg::kRa, enter);
         a.li(Reg::kT0, domain_registry(sr_base));
         a.li(Reg::kT2, pt_page(sr_base));
         a.sd(Reg::kT2, Reg::kT0, 0);
         a.ret();
         symbols.push_back({"bind_root", *a.label_address(bind)});
         emit_leaf(a, symbols, enter, "dpti_domain_enter");
       }),
       false, FlowDiagKind::kCredAfterWalkable});

  // ---- ptauth trio (plus the credential variant of T2) --------------------

  // T3: the MAC key handed to the trace sink as an argument.
  corpus.push_back(
      {"flow_ptauth_mac_to_trace",
       "MAC key passed to trace_emit in a0",
       BackendKind::kPtauth,
       build([&](Assembler& a, std::vector<Symbol>& symbols) {
         auto sink = a.make_label();
         a.li(Reg::kT0, mac_key(sr_base));
         a.ld(Reg::kA0, Reg::kT0, 0);
         a.jal(Reg::kRa, sink);
         a.ebreak();
         emit_leaf(a, symbols, sink, "trace_emit");
       }),
       false, FlowDiagKind::kSecretToSink});

  // M1: a PTE installed without going through ptauth_sign_pte.
  corpus.push_back(
      {"flow_ptauth_unmediated_store",
       "PTE store bypassing the sign-and-install routine",
       BackendKind::kPtauth,
       build([&](Assembler& a, std::vector<Symbol>&) {
         a.li(Reg::kT0, pt_page(sr_base));
         a.sd(Reg::kZero, Reg::kT0, 0);
         a.ebreak();
       }),
       false, FlowDiagKind::kUnmediatedPtStore});

  // M2: satp written before the MAC credential reaches the PCB.
  corpus.push_back(
      {"flow_ptauth_cred_after_walkable",
       "bind_root writes satp before the PCB credential",
       BackendKind::kPtauth,
       build([&](Assembler& a, std::vector<Symbol>& symbols) {
         auto bind = a.make_label();
         a.jal(Reg::kRa, bind);
         a.ebreak();
         a.bind(bind);
         a.li(Reg::kT1, pt_page(sr_base) >> 12);
         a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
         a.li(Reg::kT0, pcb_cred(sr_base));
         a.li(Reg::kT2, 0x1234);
         a.sd(Reg::kT2, Reg::kT0, 0);
         a.ret();
         symbols.push_back({"bind_root", *a.label_address(bind)});
       }),
       false, FlowDiagKind::kCredAfterWalkable});

  // T2, credential class: the PCB MAC credential leaked to user memory.
  corpus.push_back(
      {"flow_ptauth_cred_to_user",
       "PCB credential copied to a U-mode-readable page",
       BackendKind::kPtauth,
       build([&](Assembler& a, std::vector<Symbol>&) {
         a.li(Reg::kT0, pcb_cred(sr_base));
         a.ld(Reg::kA0, Reg::kT0, 0);
         a.li(Reg::kT1, user_page());
         a.sd(Reg::kA0, Reg::kT1, 0);
         a.ebreak();
       }),
       false, FlowDiagKind::kSecretToUser});

  // ---- benign near-miss ---------------------------------------------------

  // Every rule's legal shape at once: a token read whose value only ever
  // lands back in its sanctioned home, a PT write through the sd.pt channel,
  // and a bind path that commits the credential before satp. Must stay clean.
  corpus.push_back(
      {"flow_ptstore_benign",
       "token round-trip, mediated PT write, and correctly ordered bind",
       BackendKind::kPtstore,
       build([&](Assembler& a, std::vector<Symbol>& symbols) {
         auto reader = a.make_label();
         auto bind = a.make_label();
         a.jal(Reg::kRa, reader);
         a.li(Reg::kT0, token_table(sr_base) + 8);
         a.sd_pt(Reg::kA0, Reg::kT0, 0);  // Sanctioned: back into the table.
         a.li(Reg::kT0, pt_page(sr_base));
         a.sd_pt(Reg::kZero, Reg::kT0, 0);  // Mediated by the pt channel.
         a.jal(Reg::kRa, bind);
         a.ebreak();
         emit_reader(a, symbols, reader, "read_token", token_table(sr_base),
                     /*pt=*/true);
         a.bind(bind);
         a.li(Reg::kT0, token_table(sr_base));
         a.li(Reg::kT2, 0x5A5A);
         a.sd_pt(Reg::kT2, Reg::kT0, 0);  // Credential first...
         a.li(Reg::kT1, pt_page(sr_base) >> 12);
         a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);  // ...then walkable.
         a.ret();
         symbols.push_back({"bind_root", *a.label_address(bind)});
       }),
       true, FlowDiagKind{}});

  return corpus;
}

const FlowCorpusEntry* find_flow_entry(const std::vector<FlowCorpusEntry>& corpus,
                                       const std::string& name) {
  for (const FlowCorpusEntry& e : corpus) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Image reference_kernel_image(BackendKind k, u64 sr_base, u64 sr_end) {
  (void)sr_end;
  const u64 satp_val = pt_page(sr_base) >> 12;

  switch (k) {
    case BackendKind::kAuto:
    case BackendKind::kStock:
      // Undefended: bind zeroes the PCB token field and installs the root.
      return build([&](Assembler& a, std::vector<Symbol>& symbols) {
        auto bind = a.make_label();
        a.jal(Reg::kRa, bind);
        a.ebreak();
        a.bind(bind);
        a.li(Reg::kT0, pcb_cred(sr_base));
        a.sd(Reg::kZero, Reg::kT0, 0);
        a.li(Reg::kT1, satp_val);
        a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
        a.ret();
        symbols.push_back({"bind_root", *a.label_address(bind)});
      });

    case BackendKind::kPtstore:
      // The paper's protocol: tokens live in the secure region and move only
      // through ld.pt/sd.pt; every satp write is dominated by
      // token_validate; bind commits the token before satp. This rendering
      // is both flow-clean and ptlint-clean (R1–R4).
      return build([&](Assembler& a, std::vector<Symbol>& symbols) {
        auto bind = a.make_label();
        auto swtch = a.make_label();
        auto install = a.make_label();
        auto validate = a.make_label();
        a.jal(Reg::kRa, bind);
        a.jal(Reg::kRa, swtch);
        a.jal(Reg::kRa, install);
        a.ebreak();

        a.bind(bind);  // bind_root: issue token, validate, then walkable.
        a.li(Reg::kT0, token_table(sr_base));
        a.li(Reg::kT2, 0x5A5A);
        a.sd_pt(Reg::kT2, Reg::kT0, 0);
        a.jal(Reg::kRa, validate);
        a.li(Reg::kT1, satp_val);
        a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
        a.ret();
        symbols.push_back({"bind_root", *a.label_address(bind)});

        a.bind(swtch);  // switch_mm: validate the binding, then satp.
        a.jal(Reg::kRa, validate);
        a.li(Reg::kT1, satp_val);
        a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
        a.ret();
        symbols.push_back({"switch_mm", *a.label_address(swtch)});

        a.bind(install);  // Mediated PT write: the pt channel itself.
        a.li(Reg::kT0, pt_page(sr_base));
        a.li(Reg::kT1, 0x200000CF);  // A leaf PTE.
        a.sd_pt(Reg::kT1, Reg::kT0, 0);
        a.ret();
        symbols.push_back({"pt_install", *a.label_address(install)});

        emit_reader(a, symbols, validate, "token_validate",
                    token_table(sr_base), /*pt=*/true);
      });

    case BackendKind::kDpti:
      // Roots registered in the protected domain before satp; every PT-pool
      // store behind the domain gate.
      return build([&](Assembler& a, std::vector<Symbol>& symbols) {
        auto bind = a.make_label();
        auto swtch = a.make_label();
        auto write = a.make_label();
        auto enter = a.make_label();
        a.jal(Reg::kRa, bind);
        a.jal(Reg::kRa, swtch);
        a.jal(Reg::kRa, write);
        a.ebreak();

        a.bind(bind);  // bind_root: register in-domain, then walkable.
        a.jal(Reg::kRa, enter);
        a.li(Reg::kT0, domain_registry(sr_base));
        a.li(Reg::kT2, pt_page(sr_base));
        a.sd(Reg::kT2, Reg::kT0, 0);
        a.li(Reg::kT1, satp_val);
        a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
        a.ret();
        symbols.push_back({"bind_root", *a.label_address(bind)});

        a.bind(swtch);  // switch_mm: check the registry, then satp.
        a.li(Reg::kT0, domain_registry(sr_base));
        a.ld(Reg::kA0, Reg::kT0, 0);  // Root stays in registers only.
        a.li(Reg::kT1, satp_val);
        a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
        a.ret();
        symbols.push_back({"switch_mm", *a.label_address(swtch)});

        a.bind(write);  // PT write inside the domain.
        a.jal(Reg::kRa, enter);
        a.li(Reg::kT0, pt_page(sr_base));
        a.li(Reg::kT1, 0x200000CF);
        a.sd(Reg::kT1, Reg::kT0, 0);
        a.ret();
        symbols.push_back({"pt_write", *a.label_address(write)});

        emit_leaf(a, symbols, enter, "dpti_domain_enter");
      });

    case BackendKind::kPtauth:
      // The MAC over (root, pid) is the credential: computed from the key,
      // stored only into its PCB home, committed before satp; PTE installs
      // go through the signing routine.
      return build([&](Assembler& a, std::vector<Symbol>& symbols) {
        auto bind = a.make_label();
        auto swtch = a.make_label();
        auto install = a.make_label();
        auto mac = a.make_label();
        auto sign = a.make_label();
        a.jal(Reg::kRa, bind);
        a.jal(Reg::kRa, swtch);
        a.jal(Reg::kRa, install);
        a.ebreak();

        a.bind(bind);  // bind_root: MAC into the PCB, then walkable.
        a.jal(Reg::kRa, mac);
        a.li(Reg::kT0, pcb_cred(sr_base));
        a.sd(Reg::kA0, Reg::kT0, 0);  // Sanctioned home of the credential.
        a.li(Reg::kT1, satp_val);
        a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
        a.ret();
        symbols.push_back({"bind_root", *a.label_address(bind)});

        a.bind(swtch);  // switch_mm: recompute and compare, then satp.
        a.li(Reg::kT0, pcb_cred(sr_base));
        a.ld(Reg::kA1, Reg::kT0, 0);
        a.jal(Reg::kRa, mac);
        a.xor_(Reg::kA0, Reg::kA0, Reg::kA1);  // Zero iff the MAC matches.
        a.li(Reg::kT1, satp_val);
        a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
        a.ret();
        symbols.push_back({"switch_mm", *a.label_address(swtch)});

        a.bind(install);  // PTE install through the signing routine.
        a.jal(Reg::kRa, sign);
        a.li(Reg::kT0, pt_page(sr_base));
        a.li(Reg::kT1, 0x200000CF);
        a.sd(Reg::kT1, Reg::kT0, 0);
        a.ret();
        symbols.push_back({"pt_install", *a.label_address(install)});

        a.bind(mac);  // MAC(root, pid) from the monitor key.
        a.li(Reg::kT0, mac_key(sr_base));
        a.ld(Reg::kA0, Reg::kT0, 0);
        a.li(Reg::kT1, 0x1001);
        a.xor_(Reg::kA0, Reg::kA0, Reg::kT1);
        a.ret();
        symbols.push_back({"compute_mac", *a.label_address(mac)});

        emit_leaf(a, symbols, sign, "ptauth_sign_pte");
      });
  }
  return Image{};
}

}  // namespace ptstore::analysis
