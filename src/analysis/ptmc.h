// ptmc — bounded explicit-state model checker for the PTStore reference
// monitor.
//
// The concrete simulator (src/kernel) implements the paper's protocol in
// full architectural detail; ptmc abstracts it into a finite transition
// system small enough to enumerate exhaustively within a bound:
//
//   * 4 physical pages (a secure-region / normal-memory boundary splits
//     them; the boundary can move down once, modelling §IV-C1 growth and
//     its dirty-donation hazard),
//   * 2 processes, each with a PCB page-table pointer and a PCB token
//     pointer (both in attacker-writable normal memory — §III threat
//     model), plus the kernel's own ghost view of the root it issued,
//   * a 2-entry token table living in the secure region,
//   * one satp (root, S bit, and a ghost "bound" flag meaning "this root
//     was issued by the kernel to the process now running").
//
// Transitions are the kernel protocol ops of src/kernel/protocol.h
// (alloc_pt / free_pt / copy_mm=spawn / switch_mm / exit_mm / grow)
// interleaved with the §III attacker primitives: arbitrary writes outside
// the secure region, PCB pointer redirection, token forgery, allocator
// free-list corruption, and — behind an explicit gadget gate — a direct
// satp write.
//
// Checked properties (the machine-checked form of §V-E's prose arguments):
//   P1  the page-table walker never consumes an attacker-controlled PTE
//       from outside the secure region,
//   P2  satp never carries a root the kernel did not issue to the
//       running process,
//   P3  no two live tokens alias the same page table,
//   P4  no page-table page is placed with non-zero (stale or attacker)
//       content — freed PT pages are zeroed before reuse.
//
// SMP extension: with ModelConfig::nharts == 2 the state gains a second
// satp (hart 1), the alphabet gains hart-1 interleavings of switch_mm and
// user_access, and exit_mm models the cross-hart TLB-shootdown protocol —
// with IPIs on, a remote hart parked on the dying root is repointed at the
// kernel space (leave_mm); with the sabotage knob (ipi = false) its satp
// goes stale, and a later user access through the recycled root is the P2
// breach the shootdown exists to prevent. nharts == 1 reproduces the
// historical model bit-for-bit.
//
// The checker is a BFS over packed 58-bit states with hash dedup, so every
// counterexample is shortest-first. Each ModelConfig defence flag mirrors
// one concrete kernel/PMP knob, which is what lets ptmc's counterexamples
// be replayed op-for-op against the real System (src/attacks/ptmc_replay.h).
//
// Soundness caveat: this is a *bounded* result. "No violation" means no
// violation within max_depth/max_states over this abstraction — see
// docs/ANALYSIS.md for what the bound does and does not imply.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace ptstore::analysis::ptmc {

inline constexpr unsigned kNumPages = 4;
inline constexpr unsigned kNumProcs = 2;
/// "No page" sentinel for every 3-bit page field.
inline constexpr u8 kNoPage = 0x7;

enum class PageStatus : u8 { kFree = 0, kPt = 1 };
enum class PageContent : u8 { kZero = 0, kPtData = 1, kAttacker = 2 };

/// What a PCB's token-pointer field references. Slot i is the token-table
/// entry the kernel issued to process i; kFake is an attacker-crafted
/// token image materialised in normal memory (page 0).
enum class TokenRef : u8 { kNone = 0, kSlot0 = 1, kSlot1 = 2, kFake = 3 };

struct PageState {
  PageStatus status = PageStatus::kFree;
  PageContent content = PageContent::kZero;
};

struct ProcState {
  bool live = false;
  u8 pgd = kNoPage;        ///< PCB page-table pointer (attacker-writable).
  TokenRef token = TokenRef::kNone;  ///< PCB token pointer (attacker-writable).
  u8 ghost_root = kNoPage; ///< Root the kernel actually issued (ghost state).
  u8 extra_pt = kNoPage;   ///< One optional extra PT page (alloc_pt/free_pt).
};

struct TokenState {
  bool live = false;
  u8 pt_page = 0;  ///< Page table this token binds (canonical 0 when dead).
};

struct SatpState {
  u8 root = kNoPage;  ///< kNoPage = kernel address space (no user root).
  bool s = false;     ///< satp.S — PTW secure check armed.
  bool bound = true;  ///< Ghost: root was issued to the running process.
};

struct State {
  u8 boundary = 2;  ///< Page i is secure iff i >= boundary (1 or 2).
  PageState pages[kNumPages];
  ProcState procs[kNumProcs];
  TokenState tokens[kNumProcs];
  SatpState satp;
  /// Hart 1's satp (SMP extension). Constant at its initial value when
  /// ModelConfig::nharts == 1, so single-hart packing/dedup is unchanged.
  /// `bound == false` additionally marks a *stale* root: the address space
  /// was retired but no shootdown IPI reached this hart.
  SatpState satp1;
  u8 forced_alloc = kNoPage;  ///< Corrupted free list: next PT alloc target.

  /// Canonical 58-bit packing — the BFS dedup key (53 historical bits plus
  /// hart 1's satp at [53..57]).
  u64 pack() const;
  static State initial();

  SatpState& satp_of(unsigned hart) { return hart == 0 ? satp : satp1; }
  const SatpState& satp_of(unsigned hart) const {
    return hart == 0 ? satp : satp1;
  }
};

inline bool is_secure(const State& s, u8 page) { return page >= s.boundary; }

// ---------------------------------------------------------------------------
// Properties.

inline constexpr u8 kP1 = 1u << 0;
inline constexpr u8 kP2 = 1u << 1;
inline constexpr u8 kP3 = 1u << 2;
inline constexpr u8 kP4 = 1u << 3;
inline constexpr u8 kAllProps = kP1 | kP2 | kP3 | kP4;
inline constexpr unsigned kNumProps = 4;

/// "P1".."P4" for prop index 0..3.
const char* prop_name(unsigned idx);
/// One-line statement of the property.
const char* prop_text(unsigned idx);

// ---------------------------------------------------------------------------
// Operations.

enum class OpKind : u8 {
  // Kernel protocol ops (src/kernel/protocol.h).
  kSpawn,        ///< copy_mm: create process a (allocates + tokenises a root).
  kExitMm,       ///< exit_mm: reap process a (frees + zeroes its PT pages).
  kSwitchMm,     ///< switch_mm: schedule process a (token check, satp write).
  kAllocPt,      ///< alloc_pt: grow process a's tables by one PT page.
  kFreePt,       ///< free_pt: release that page again.
  kGrow,         ///< Secure-region growth: boundary moves down one page.
  kUserAccess,   ///< A user access drives the PTW over the current satp.
  // Attacker primitives (src/attacks/primitive.h threat model).
  kAtkWritePage,         ///< Arbitrary regular write into page a.
  kAtkRedirectPgd,       ///< PCB write: proc a's pgd := page b.
  kAtkRedirectToken,     ///< PCB write: proc a's token pointer := TokenRef b.
  kAtkForgeToken,        ///< Regular write into token slot a: bind page b.
  kAtkCorruptAllocator,  ///< Free-list corruption: next PT alloc := page a.
  kAtkSatpWrite,         ///< csr-write gadget (gated): satp := page a, S=0.
};

struct Op {
  OpKind kind = OpKind::kUserAccess;
  u8 a = 0;
  u8 b = 0;
  u8 hart = 0;  ///< Executing hart (only switch_mm/user_access run on hart 1).
};

/// The fixed 48-op alphabet (every kind × operand combination). Op IDs are
/// indices into this vector and are append-only (pinned by a golden test):
/// saved counterexamples and seeds must replay identically across versions.
const std::vector<Op>& all_ops();

/// The 51-op SMP alphabet: all_ops() (IDs 0..47, hart 0) plus hart-1
/// interleavings appended at IDs 48..50 — switch_mm(p0)@h1, switch_mm(p1)@h1,
/// user_access@h1. Used when ModelConfig::nharts >= 2.
const std::vector<Op>& all_ops_smp();

/// Human-readable rendering, e.g. "switch_mm(p1)" or "atk: pcb[0].pgd = page3";
/// hart-1 ops get an "@h1" suffix.
std::string describe(const Op& op);
/// Compact state rendering for traces and DOT labels.
std::string describe(const State& s);

// ---------------------------------------------------------------------------
// Model configuration: each defence flag mirrors one concrete knob.

struct ModelConfig {
  bool s_bit = true;       ///< PMP S-bit enforcement (PmpUnit::set_secure_enforcement).
  bool ptw_check = true;   ///< satp.S walker check (KernelConfig::ptw_check).
  bool token_check = true; ///< switch_mm token validation (KernelConfig::token_check).
  bool zero_check = true;  ///< §V-E3 all-zero check (KernelConfig::zero_check).
  bool csr_gadget = false; ///< Attacker owns a satp-write gadget (off: §III model).
  bool allow_grow = true;  ///< Secure-region growth enabled.
  u32 max_depth = 16;        ///< BFS depth bound (full closure needs 14).
  u64 max_states = 600'000;  ///< Visited-state budget (closure is ~254k).
  u8 stop_after_violated = 0;  ///< Stop early once these props are violated.

  // ---- SMP extension. nharts == 1 reproduces the historical single-hart
  // transition system bit-for-bit (alphabet, packing, counts). ----
  unsigned nharts = 1;  ///< Model harts (1 or 2).
  bool ipi = true;      ///< retire_mm sends shootdown IPIs; off = the
                        ///< skip_shootdown_ipi sabotage knob, leaving remote
                        ///< harts parked on stale roots.
  // ---- Backend capability knobs (for modelling DPTI/PTAuth; the PTStore
  // defaults leave both off). ----
  bool verify_on_walk = false;    ///< Walker authenticates every PTE fetched
                                  ///< (PTAuth): attacker PTEs fault instead
                                  ///< of being consumed.
  bool cred_unforgeable = false;  ///< Credentials can't be fabricated from
                                  ///< normal memory (DPTI's registry, PTAuth's
                                  ///< keyed MAC): forge/fake ops are inert.
};

/// One transition: op applied to a state either has no successor (the op is
/// disabled or a defence architecturally blocked it) or yields exactly one.
struct Successor {
  State next;
  u8 violations = 0;  ///< Props this transition violates (kP1..kP4 mask).
  std::string note;   ///< What happened, for traces.
};

std::optional<Successor> apply(const State& s, const Op& op,
                               const ModelConfig& cfg);

// ---------------------------------------------------------------------------
// Checking.

struct Step {
  Op op;
  State after;
  std::string note;
  u8 violations = 0;
};

struct Counterexample {
  unsigned prop = 0;  ///< Violated property index 0..3.
  ModelConfig cfg;    ///< Configuration it was found under.
  std::vector<Step> steps;  ///< Shortest op sequence from State::initial().
};

struct CheckResult {
  u8 props_checked = kAllProps;
  u8 props_violated = 0;
  bool complete = false;     ///< Reachable closure exhausted within bounds.
  bool depth_capped = false; ///< Frontier truncated at max_depth.
  bool state_capped = false; ///< Visited budget exhausted.
  bool early_stopped = false;  ///< stop_after_violated triggered.
  u64 states = 0;        ///< Distinct states visited.
  u64 transitions = 0;   ///< Successor-producing op applications.
  u32 depth = 0;         ///< Deepest level reached.
  /// First (= shortest) counterexample per violated property.
  std::vector<Counterexample> counterexamples;

  bool ok() const { return props_violated == 0; }
  const Counterexample* counterexample_for(unsigned prop_idx) const;
  std::string format() const;
};

/// BFS over the reachable states of `cfg`'s transition system.
CheckResult check(const ModelConfig& cfg);

// ---------------------------------------------------------------------------
// Mutation matrix: for each defence, the *minimal* set of knobs to disable
// so that exactly the targeted property becomes violable. PTStore's defences
// overlap (defence-in-depth), so some single-knob mutations break nothing —
// the matrix encodes the minimal sets plus that depth assertion.

struct MutationEntry {
  const char* name;    ///< CLI name: "ptw", "token", "sbit", "zero", "ptw-alone".
  ModelConfig cfg;
  u8 must_break;       ///< Props that MUST be violated under this mutation.
  u8 may_also_break;   ///< Collateral violations that are expected and sound.
  const char* rationale;
};

/// The matrix derived from `base` (bounds and gadget flag are inherited).
std::vector<MutationEntry> mutation_matrix(const ModelConfig& base);

// ---------------------------------------------------------------------------
// Export.

/// Counterexample as a GraphViz digraph (one node per state along the trace).
std::string to_dot(const Counterexample& ce);
/// CheckResult (including counterexample traces) as a JSON document.
std::string to_json(const CheckResult& r);

}  // namespace ptstore::analysis::ptmc
