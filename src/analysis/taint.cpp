#include "analysis/taint.h"

#include <sstream>

#include "isa/inst.h"

namespace ptstore::analysis {

const char* taint_class_name(TaintSet bit) {
  switch (bit) {
    case kTaintToken: return "token";
    case kTaintMacKey: return "mac-key";
    case kTaintCredential: return "credential";
    case kTaintDomainRoot: return "domain-root";
    default: return "?";
  }
}

std::string describe_taint(TaintSet t) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (unsigned b = 0; b < 8; ++b) {
    const TaintSet bit = static_cast<TaintSet>(1u << b);
    if ((t & bit) == 0) continue;
    os << (first ? "" : ", ") << taint_class_name(bit);
    first = false;
  }
  for (unsigned i = 0; i < 8; ++i) {
    if ((t & taint_arg(i)) == 0) continue;
    os << (first ? "" : ", ") << "arg" << i;
    first = false;
  }
  os << "}";
  return os.str();
}

FlowState FlowState::entry(bool symbolic_args) {
  FlowState st;
  st.reached = true;
  for (AbsVal& v : st.regs) v = AbsVal::top();
  st.regs[0] = AbsVal::exact(0);
  if (symbolic_args) {
    for (unsigned i = 0; i < 8; ++i) st.taint[10 + i] = taint_arg(i);
  }
  return st;
}

bool FlowState::join_from(const FlowState& o) {
  if (!o.reached) return false;
  if (!reached) {
    *this = o;
    return true;
  }
  bool changed = false;
  for (unsigned r = 1; r < 32; ++r) {
    const AbsVal j = regs[r].join(o.regs[r]);
    if (j != regs[r]) {
      regs[r] = j;
      changed = true;
    }
    const TaintSet t = static_cast<TaintSet>(taint[r] | o.taint[r]);
    if (t != taint[r]) {
      taint[r] = t;
      changed = true;
    }
  }
  if (mediated && !o.mediated) {
    mediated = false;
    changed = true;
  }
  if (cred_written && !o.cred_written) {
    cred_written = false;
    changed = true;
  }
  return changed;
}

TaintSet taint_after(const isa::Inst& in, const std::array<TaintSet, 32>& taint) {
  using isa::Op;
  switch (in.op) {
    case Op::kLui:
    case Op::kAuipc:
      return 0;  // Constants are clean, ending any li-chain taint.
    case Op::kAddi:
    case Op::kAddiw:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
    case Op::kSlliw:
    case Op::kSrliw:
    case Op::kSraiw:
    case Op::kSlti:
    case Op::kSltiu:
      return taint[in.rs1];
    case Op::kAdd:
    case Op::kSub:
    case Op::kAddw:
    case Op::kSubw:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kSllw:
    case Op::kSrlw:
    case Op::kSraw:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kMul:
    case Op::kMulh:
    case Op::kMulhsu:
    case Op::kMulhu:
    case Op::kDiv:
    case Op::kDivu:
    case Op::kRem:
    case Op::kRemu:
    case Op::kMulw:
    case Op::kDivw:
    case Op::kDivuw:
    case Op::kRemw:
    case Op::kRemuw:
      // Any arithmetic mixing of a secret keeps it secret (a MAC computed
      // from the key is still key-derived).
      return static_cast<TaintSet>(taint[in.rs1] | taint[in.rs2]);
    default:
      // Loads (the verifier re-taints from secret ranges), CSR reads,
      // AMO results, jumps: clean at this layer.
      return 0;
  }
}

void FlowState::step(u64 pc, const isa::Inst& in) {
  const TaintSet t = taint_after(in, taint);
  interval_step(pc, in, regs);
  if (in.rd != 0 && !in.is_store() && !in.is_branch()) taint[in.rd] = t;
}

}  // namespace ptstore::analysis
