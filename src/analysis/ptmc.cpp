#include "analysis/ptmc.h"

#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "telemetry/json.h"

namespace ptstore::analysis::ptmc {

// ---------------------------------------------------------------------------
// State packing. Layout (LSB first):
//   [0]      boundary - 1
//   [1..12]  pages[i]: status (1) + content (2), 3 bits each
//   [13..36] procs[p]: live (1) + pgd (3) + token (2) + ghost (3) + extra (3)
//   [37..44] tokens[t]: live (1) + pt_page (3)
//   [45..49] satp: root (3) + s (1) + bound (1)
//   [50..52] forced_alloc
//   [53..57] satp1: root (3) + s (1) + bound (1)   (SMP extension)
// 58 bits total — fits a u64 key. satp1 is constant in single-hart mode, so
// the historical 53-bit keyspace is embedded unchanged.

u64 State::pack() const {
  u64 k = static_cast<u64>(boundary - 1);
  unsigned shift = 1;
  for (unsigned i = 0; i < kNumPages; ++i) {
    const u64 f = static_cast<u64>(pages[i].status) |
                  (static_cast<u64>(pages[i].content) << 1);
    k |= f << shift;
    shift += 3;
  }
  for (unsigned p = 0; p < kNumProcs; ++p) {
    const u64 f = static_cast<u64>(procs[p].live) |
                  (static_cast<u64>(procs[p].pgd) << 1) |
                  (static_cast<u64>(procs[p].token) << 4) |
                  (static_cast<u64>(procs[p].ghost_root) << 6) |
                  (static_cast<u64>(procs[p].extra_pt) << 9);
    k |= f << shift;
    shift += 12;
  }
  for (unsigned t = 0; t < kNumProcs; ++t) {
    const u64 f = static_cast<u64>(tokens[t].live) |
                  (static_cast<u64>(tokens[t].pt_page) << 1);
    k |= f << shift;
    shift += 4;
  }
  k |= (static_cast<u64>(satp.root) | (static_cast<u64>(satp.s) << 3) |
        (static_cast<u64>(satp.bound) << 4))
       << shift;
  shift += 5;
  k |= static_cast<u64>(forced_alloc) << shift;
  shift += 3;
  k |= (static_cast<u64>(satp1.root) | (static_cast<u64>(satp1.s) << 3) |
        (static_cast<u64>(satp1.bound) << 4))
       << shift;
  return k;
}

State State::initial() { return State{}; }

// ---------------------------------------------------------------------------
// Properties.

const char* prop_name(unsigned idx) {
  static const char* kNames[kNumProps] = {"P1", "P2", "P3", "P4"};
  return idx < kNumProps ? kNames[idx] : "?";
}

const char* prop_text(unsigned idx) {
  static const char* kTexts[kNumProps] = {
      "PTW never consumes an attacker PTE outside the secure region",
      "satp never carries a root the kernel did not issue to the running process",
      "no two live tokens alias the same page table",
      "no PT page is placed with non-zero content (freed pages zeroed before reuse)",
  };
  return idx < kNumProps ? kTexts[idx] : "?";
}

// ---------------------------------------------------------------------------
// Op alphabet.

const std::vector<Op>& all_ops() {
  static const std::vector<Op> ops = [] {
    std::vector<Op> v;
    for (u8 p = 0; p < kNumProcs; ++p) {
      v.push_back({OpKind::kSpawn, p, 0});
      v.push_back({OpKind::kExitMm, p, 0});
      v.push_back({OpKind::kSwitchMm, p, 0});
      v.push_back({OpKind::kAllocPt, p, 0});
      v.push_back({OpKind::kFreePt, p, 0});
    }
    v.push_back({OpKind::kGrow, 0, 0});
    v.push_back({OpKind::kUserAccess, 0, 0});
    for (u8 pg = 0; pg < kNumPages; ++pg) v.push_back({OpKind::kAtkWritePage, pg, 0});
    for (u8 p = 0; p < kNumProcs; ++p)
      for (u8 pg = 0; pg < kNumPages; ++pg)
        v.push_back({OpKind::kAtkRedirectPgd, p, pg});
    for (u8 p = 0; p < kNumProcs; ++p)
      for (u8 r = 0; r < 4; ++r)
        v.push_back({OpKind::kAtkRedirectToken, p, r});
    for (u8 slot = 0; slot < kNumProcs; ++slot)
      for (u8 pg = 0; pg < kNumPages; ++pg)
        v.push_back({OpKind::kAtkForgeToken, slot, pg});
    for (u8 pg = 0; pg < kNumPages; ++pg)
      v.push_back({OpKind::kAtkCorruptAllocator, pg, 0});
    for (u8 pg = 0; pg < kNumPages; ++pg)
      v.push_back({OpKind::kAtkSatpWrite, pg, 0});
    return v;
  }();
  return ops;
}

const std::vector<Op>& all_ops_smp() {
  // Append-only: IDs 0..47 are all_ops() verbatim; the hart-1 interleavings
  // take 48..50. Only the ops whose semantics read per-hart state run on
  // hart 1 — everything else is hart-agnostic (shared memory), and modelling
  // it per-hart would only square the alphabet without reaching new states.
  static const std::vector<Op> ops = [] {
    std::vector<Op> v = all_ops();
    for (u8 p = 0; p < kNumProcs; ++p)
      v.push_back({OpKind::kSwitchMm, p, 0, 1});
    v.push_back({OpKind::kUserAccess, 0, 0, 1});
    return v;
  }();
  return ops;
}

namespace {

const char* token_ref_name(TokenRef r) {
  switch (r) {
    case TokenRef::kNone: return "none";
    case TokenRef::kSlot0: return "slot0";
    case TokenRef::kSlot1: return "slot1";
    case TokenRef::kFake: return "fake";
  }
  return "?";
}

std::string page_name(u8 pg) {
  if (pg == kNoPage) return "-";
  return "page" + std::to_string(pg);
}

}  // namespace

std::string describe(const Op& op) {
  std::ostringstream os;
  switch (op.kind) {
    case OpKind::kSpawn: os << "spawn(p" << int{op.a} << ")"; break;
    case OpKind::kExitMm: os << "exit_mm(p" << int{op.a} << ")"; break;
    case OpKind::kSwitchMm: os << "switch_mm(p" << int{op.a} << ")"; break;
    case OpKind::kAllocPt: os << "alloc_pt(p" << int{op.a} << ")"; break;
    case OpKind::kFreePt: os << "free_pt(p" << int{op.a} << ")"; break;
    case OpKind::kGrow: os << "grow_secure_region()"; break;
    case OpKind::kUserAccess: os << "user_access()"; break;
    case OpKind::kAtkWritePage:
      os << "atk: write " << page_name(op.a);
      break;
    case OpKind::kAtkRedirectPgd:
      os << "atk: pcb[" << int{op.a} << "].pgd = " << page_name(op.b);
      break;
    case OpKind::kAtkRedirectToken:
      os << "atk: pcb[" << int{op.a}
         << "].token = " << token_ref_name(static_cast<TokenRef>(op.b));
      break;
    case OpKind::kAtkForgeToken:
      os << "atk: token_slot[" << int{op.a} << "] := " << page_name(op.b);
      break;
    case OpKind::kAtkCorruptAllocator:
      os << "atk: freelist head = " << page_name(op.a);
      break;
    case OpKind::kAtkSatpWrite:
      os << "atk: csrw satp = " << page_name(op.a);
      break;
  }
  if (op.hart != 0) os << "@h" << int{op.hart};
  return os.str();
}

std::string describe(const State& s) {
  std::ostringstream os;
  os << "sr>=" << int{s.boundary} << " pages[";
  for (unsigned i = 0; i < kNumPages; ++i) {
    if (i != 0) os << " ";
    os << (s.pages[i].status == PageStatus::kPt ? "PT" : "fr");
    switch (s.pages[i].content) {
      case PageContent::kZero: os << "/0"; break;
      case PageContent::kPtData: os << "/pt"; break;
      case PageContent::kAttacker: os << "/ATK"; break;
    }
  }
  os << "]";
  for (unsigned p = 0; p < kNumProcs; ++p) {
    os << " p" << p;
    if (!s.procs[p].live) {
      os << "(dead)";
      continue;
    }
    os << "(pgd=" << page_name(s.procs[p].pgd)
       << ",tok=" << token_ref_name(s.procs[p].token)
       << ",ghost=" << page_name(s.procs[p].ghost_root);
    if (s.procs[p].extra_pt != kNoPage)
      os << ",extra=" << page_name(s.procs[p].extra_pt);
    os << ")";
  }
  os << " tokens[";
  for (unsigned t = 0; t < kNumProcs; ++t) {
    if (t != 0) os << " ";
    if (s.tokens[t].live)
      os << page_name(s.tokens[t].pt_page);
    else
      os << "-";
  }
  os << "] satp=" << page_name(s.satp.root) << (s.satp.s ? "+S" : "")
     << (s.satp.bound ? "" : "!unbound");
  // Hart 1's satp appears only once it has left its reset value, so
  // single-hart renderings are unchanged.
  if (s.satp1.root != kNoPage || s.satp1.s || !s.satp1.bound) {
    os << " satp@h1=" << page_name(s.satp1.root) << (s.satp1.s ? "+S" : "")
       << (s.satp1.bound ? "" : "!stale");
  }
  if (s.forced_alloc != kNoPage) os << " forced=" << page_name(s.forced_alloc);
  return os.str();
}

// ---------------------------------------------------------------------------
// Transition semantics.

namespace {

/// Lowest free page inside the secure region, or kNoPage.
u8 lowest_free_secure(const State& s) {
  for (u8 pg = s.boundary; pg < kNumPages; ++pg) {
    if (s.pages[pg].status == PageStatus::kFree) return pg;
  }
  return kNoPage;
}

u8 alias_violation(const State& s) {
  // P3 is about *processes*: a forged entry in a dead process's slot binds
  // nobody until that slot's owner exists, so both procs must be live too.
  if (s.procs[0].live && s.procs[1].live && s.tokens[0].live &&
      s.tokens[1].live && s.tokens[0].pt_page == s.tokens[1].pt_page)
    return kP3;
  return 0;
}

/// Shared PT-page allocation path (spawn / alloc_pt): picks the page the
/// buddy allocator would hand out (corrupted free list first), models the
/// S-bit fault on out-of-region targets and the §V-E3 zero check. Returns
/// nullopt when the op is architecturally blocked; otherwise fills `pg` and
/// sets up `suc.next`'s page/forced fields (violations/note for the zero
/// path included). `detected` reports a zero-check rejection: the successor
/// is valid (the corrupt free-list entry was consumed) but no page was
/// placed.
std::optional<Successor> alloc_pt_page(const State& s, const ModelConfig& cfg,
                                       u8& pg, bool& detected) {
  detected = false;
  const bool forced = s.forced_alloc != kNoPage;
  pg = forced ? s.forced_alloc : lowest_free_secure(s);
  if (pg == kNoPage) return std::nullopt;  // OOM: op fails cleanly.
  // Initialising the page goes through sd.pt; with S-bit enforcement on, a
  // target outside the secure region faults and the allocation is aborted.
  if (cfg.s_bit && !is_secure(s, pg)) return std::nullopt;

  Successor suc;
  suc.next = s;
  if (forced) suc.next.forced_alloc = kNoPage;
  if (s.pages[pg].content != PageContent::kZero) {
    if (cfg.zero_check) {
      // §V-E3: a PT page must arrive all-zero; a dirty page means the
      // free list double-issued (or the attacker primed it) — reject.
      detected = true;
      suc.note = "zero-check rejected non-zero " + page_name(pg);
      return suc;
    }
    suc.violations |= kP4;
    suc.note = "P4: " + page_name(pg) + " placed as PT with non-zero content";
  }
  suc.next.pages[pg] = {PageStatus::kPt, PageContent::kPtData};
  return suc;
}

std::optional<Successor> apply_spawn(const State& s, u8 p,
                                     const ModelConfig& cfg) {
  if (s.procs[p].live) return std::nullopt;
  u8 pg = kNoPage;
  bool detected = false;
  auto suc = alloc_pt_page(s, cfg, pg, detected);
  if (!suc) return std::nullopt;
  if (detected) return suc;  // Allocation refused; no process created.
  suc->next.procs[p] = {true, pg,
                        p == 0 ? TokenRef::kSlot0 : TokenRef::kSlot1, pg,
                        kNoPage};
  suc->next.tokens[p] = {true, pg};
  suc->violations |= alias_violation(suc->next);
  if (suc->note.empty())
    suc->note = "p" + std::to_string(p) + " root = " + page_name(pg);
  if (suc->violations & kP3) suc->note += "; P3: token tables alias";
  return suc;
}

std::optional<Successor> apply_alloc_pt(const State& s, u8 p,
                                        const ModelConfig& cfg) {
  if (!s.procs[p].live || s.procs[p].extra_pt != kNoPage) return std::nullopt;
  u8 pg = kNoPage;
  bool detected = false;
  auto suc = alloc_pt_page(s, cfg, pg, detected);
  if (!suc) return std::nullopt;
  if (detected) return suc;
  suc->next.procs[p].extra_pt = pg;
  if (suc->note.empty())
    suc->note = "p" + std::to_string(p) + " grew " + page_name(pg);
  return suc;
}

std::optional<Successor> apply_switch(const State& s, u8 p,
                                      const ModelConfig& cfg, u8 hart) {
  if (!s.procs[p].live) return std::nullopt;
  const u8 pgd = s.procs[p].pgd;
  if (pgd == kNoPage) return std::nullopt;
  if (cfg.token_check) {
    bool valid = false;
    switch (s.procs[p].token) {
      case TokenRef::kNone:
        break;
      case TokenRef::kSlot0:
      case TokenRef::kSlot1: {
        // The token's user pointer must point back at this PCB, so only the
        // process's own slot can validate — and only for the root it binds.
        const unsigned slot = s.procs[p].token == TokenRef::kSlot0 ? 0 : 1;
        valid = slot == p && s.tokens[slot].live &&
                s.tokens[slot].pt_page == pgd;
        break;
      }
      case TokenRef::kFake:
        // A forged token image in normal memory validates only if ld.pt can
        // reach it (S-bit enforcement off), the attacker has written it, and
        // the credential scheme is forgeable at all (not DPTI/PTAuth).
        valid = !cfg.s_bit && !cfg.cred_unforgeable &&
                s.pages[0].content == PageContent::kAttacker;
        break;
    }
    if (!valid) return std::nullopt;  // switch_mm: kTokenReject.
  }
  Successor suc;
  suc.next = s;
  const bool bound =
      s.procs[p].ghost_root != kNoPage && pgd == s.procs[p].ghost_root;
  suc.next.satp_of(hart) = {pgd, cfg.ptw_check, bound};
  suc.note = "satp <- " + page_name(pgd);
  if (hart != 0) suc.note += " on hart " + std::to_string(hart);
  if (!bound) {
    suc.violations |= kP2;
    suc.note += "; P2: root was never issued to p" + std::to_string(p);
  }
  return suc;
}

std::optional<Successor> apply_user_access(const State& s,
                                           const ModelConfig& cfg, u8 hart) {
  const SatpState& sp = s.satp_of(hart);
  const u8 root = sp.root;
  if (root == kNoPage) return std::nullopt;  // Kernel address space.
  Successor suc;
  suc.next = s;
  // SMP: `!bound` on a still-held root marks a satp left stale by a
  // shootdown that never arrived (ipi sabotage). Walking it is harmless
  // while the page sits free and zeroed — the breach is when the allocator
  // recycles it into ANOTHER process's page table and this hart silently
  // runs on an address space the kernel never issued to it: P2.
  if (cfg.nharts >= 2 && !sp.bound &&
      s.pages[root].status == PageStatus::kPt) {
    suc.violations = kP2;
    suc.note = "P2: hart " + std::to_string(hart) + " walked stale root " +
               page_name(root) + ", recycled to another process";
    return suc;
  }
  if (!is_secure(s, root)) {
    // Root fetch comes from normal memory. With satp.S the walker refuses
    // it (architectural fault — attack blocked, nothing to report). Without
    // it, consuming an attacker-written entry is exactly P1; zeroed or
    // stale-PT pages fault or walk benignly instead. A verifying walker
    // (PTAuth) faults on the unauthenticated entry the same way.
    if (sp.s) return std::nullopt;
    if (s.pages[root].content != PageContent::kAttacker) return std::nullopt;
    if (cfg.verify_on_walk) return std::nullopt;
    suc.violations = kP1;
    suc.note = "P1: walker consumed attacker PTE from " + page_name(root);
    return suc;
  }
  // Root inside the region: the level-0 fetch is in-region, but if the
  // attacker controls the root's *content* its entries point at a fake
  // hierarchy in normal memory (page 0) — the next fetch is out-of-region.
  if (s.pages[root].content == PageContent::kAttacker && !sp.s &&
      !cfg.verify_on_walk && s.pages[0].content == PageContent::kAttacker) {
    suc.violations = kP1;
    suc.note = "P1: in-region root chained to attacker tables in page0";
    return suc;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Successor> apply(const State& s, const Op& op,
                               const ModelConfig& cfg) {
  switch (op.kind) {
    case OpKind::kSpawn:
      return apply_spawn(s, op.a, cfg);
    case OpKind::kExitMm: {
      if (!s.procs[op.a].live) return std::nullopt;
      Successor suc;
      suc.next = s;
      // exit_mm frees the pages the kernel *tracked* for this mm (ghost
      // root + extra), not whatever the attacker redirected pgd to.
      // free_pt_page zeroes on both config branches.
      const u8 ghost = s.procs[op.a].ghost_root;
      const u8 extra = s.procs[op.a].extra_pt;
      if (ghost != kNoPage)
        suc.next.pages[ghost] = {PageStatus::kFree, PageContent::kZero};
      if (extra != kNoPage)
        suc.next.pages[extra] = {PageStatus::kFree, PageContent::kZero};
      suc.next.procs[op.a] = ProcState{};
      suc.next.tokens[op.a] = TokenState{};
      suc.note = "p" + std::to_string(op.a) + " reaped";
      // SMP: the teardown's cross-hart shootdown (retire_mm). A remote hart
      // parked on one of the dying roots is repointed at the kernel address
      // space (leave_mm) once its IPI lands; with the sabotage knob the IPI
      // never arrives and its satp goes stale — it keeps the root, and the
      // `bound` ghost drops to mark the missing shootdown.
      if (cfg.nharts >= 2) {
        SatpState& h1 = suc.next.satp1;
        if (h1.root != kNoPage && (h1.root == ghost || h1.root == extra)) {
          if (cfg.ipi) {
            h1 = {kNoPage, h1.s, true};
            suc.note += "; hart 1 shot down";
          } else {
            h1.bound = false;
            suc.note += "; hart 1 satp stale (no IPI)";
          }
        }
      }
      return suc;
    }
    case OpKind::kSwitchMm:
      return apply_switch(s, op.a, cfg, op.hart);
    case OpKind::kAllocPt:
      return apply_alloc_pt(s, op.a, cfg);
    case OpKind::kFreePt: {
      if (!s.procs[op.a].live || s.procs[op.a].extra_pt == kNoPage)
        return std::nullopt;
      Successor suc;
      suc.next = s;
      suc.next.pages[s.procs[op.a].extra_pt] = {PageStatus::kFree,
                                                PageContent::kZero};
      suc.next.procs[op.a].extra_pt = kNoPage;
      suc.note = "freed and zeroed";
      return suc;
    }
    case OpKind::kGrow: {
      if (!cfg.allow_grow || s.boundary <= 1) return std::nullopt;
      Successor suc;
      suc.next = s;
      suc.next.boundary = static_cast<u8>(s.boundary - 1);
      // The donated page keeps its content — the dirty-donation channel the
      // zero check exists to close.
      suc.note = "secure region grew over " + page_name(suc.next.boundary);
      return suc;
    }
    case OpKind::kUserAccess:
      return apply_user_access(s, cfg, op.hart);
    case OpKind::kAtkWritePage: {
      if (cfg.s_bit && is_secure(s, op.a)) return std::nullopt;  // PMP fault.
      Successor suc;
      suc.next = s;
      // Verifying-walker backends (PTAuth): attacker bytes are
      // indistinguishable from stale PT bytes to every defence predicate —
      // the walker faults on both, the zero check rejects both, and
      // credentials can't be fabricated from them. Folding the two content
      // classes is an exact quotient of the transition system that keeps
      // the placement-unrestricted closure enumerable.
      suc.next.pages[op.a].content =
          cfg.verify_on_walk && cfg.cred_unforgeable ? PageContent::kPtData
                                                     : PageContent::kAttacker;
      suc.note = page_name(op.a) + " now attacker-controlled";
      return suc;
    }
    case OpKind::kAtkRedirectPgd: {
      if (!s.procs[op.a].live) return std::nullopt;
      if (s.procs[op.a].pgd == op.b) return std::nullopt;
      Successor suc;
      suc.next = s;
      suc.next.procs[op.a].pgd = op.b;  // PCB lives in normal memory.
      suc.note = "pcb pointer hijacked";
      return suc;
    }
    case OpKind::kAtkRedirectToken: {
      if (!s.procs[op.a].live) return std::nullopt;
      const auto ref = static_cast<TokenRef>(op.b);
      if (s.procs[op.a].token == ref) return std::nullopt;
      Successor suc;
      suc.next = s;
      suc.next.procs[op.a].token = ref;
      suc.note = "pcb token pointer redirected";
      return suc;
    }
    case OpKind::kAtkForgeToken: {
      // The token table sits in the secure region: a regular store into it
      // is exactly what the S bit forbids. Unforgeable-credential backends
      // (DPTI registry, PTAuth MAC) are immune regardless of placement.
      if (cfg.s_bit || cfg.cred_unforgeable) return std::nullopt;
      if (s.tokens[op.a].live && s.tokens[op.a].pt_page == op.b)
        return std::nullopt;
      Successor suc;
      suc.next = s;
      suc.next.tokens[op.a] = {true, op.b};
      suc.violations |= alias_violation(suc.next);
      suc.note = "token slot " + std::to_string(op.a) + " forged -> " +
                 page_name(op.b);
      if (suc.violations & kP3) suc.note += "; P3: token tables alias";
      return suc;
    }
    case OpKind::kAtkCorruptAllocator: {
      if (s.forced_alloc == op.a) return std::nullopt;
      Successor suc;
      suc.next = s;
      suc.next.forced_alloc = op.a;  // Free lists live in normal memory.
      suc.note = "buddy free list corrupted";
      return suc;
    }
    case OpKind::kAtkSatpWrite: {
      if (!cfg.csr_gadget) return std::nullopt;
      Successor suc;
      suc.next = s;
      suc.next.satp = {op.a, false, false};
      suc.violations = kP2;
      suc.note = "P2: gadget wrote satp directly";
      return suc;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// BFS checker.

namespace {

struct Edge {
  u64 parent;
  Op op;
};

Counterexample rebuild_counterexample(
    unsigned prop_idx, const ModelConfig& cfg, u64 src_key, const Op& final_op,
    const std::unordered_map<u64, Edge>& parents) {
  // Walk the parent chain back to the initial state, then replay forward —
  // apply() is deterministic, so the replay regenerates every note.
  std::vector<Op> ops;
  u64 key = src_key;
  const u64 init_key = State::initial().pack();
  while (key != init_key) {
    const Edge& e = parents.at(key);
    ops.push_back(e.op);
    key = e.parent;
  }
  Counterexample ce;
  ce.prop = prop_idx;
  ce.cfg = cfg;
  State cur = State::initial();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    auto suc = apply(cur, *it, cfg);
    Step step;
    step.op = *it;
    step.after = suc ? suc->next : cur;
    step.note = suc ? suc->note : "";
    step.violations = suc ? suc->violations : 0;
    ce.steps.push_back(std::move(step));
    if (suc) cur = suc->next;
  }
  auto fin = apply(cur, final_op, cfg);
  Step last;
  last.op = final_op;
  last.after = fin ? fin->next : cur;
  last.note = fin ? fin->note : "";
  last.violations = fin ? fin->violations : 0;
  ce.steps.push_back(std::move(last));
  return ce;
}

}  // namespace

CheckResult check(const ModelConfig& cfg) {
  CheckResult res;
  const std::vector<Op>& alphabet =
      cfg.nharts >= 2 ? all_ops_smp() : all_ops();
  const State init = State::initial();
  const u64 init_key = init.pack();

  std::unordered_set<u64> visited{init_key};
  std::unordered_map<u64, Edge> parents;
  std::unordered_map<u64, State> frontier_states{{init_key, init}};
  std::deque<std::pair<u64, u32>> queue{{init_key, 0}};

  while (!queue.empty()) {
    const auto [key, depth] = queue.front();
    queue.pop_front();
    const State s = frontier_states.at(key);
    frontier_states.erase(key);
    if (depth > res.depth) res.depth = depth;
    if (depth >= cfg.max_depth) {
      res.depth_capped = true;
      continue;
    }
    for (const Op& op : alphabet) {
      auto suc = apply(s, op, cfg);
      if (!suc) continue;
      ++res.transitions;
      if (suc->violations != 0) {
        for (unsigned i = 0; i < kNumProps; ++i) {
          const u8 bit = static_cast<u8>(1u << i);
          if ((suc->violations & bit) != 0 && (res.props_violated & bit) == 0) {
            res.props_violated |= bit;
            res.counterexamples.push_back(
                rebuild_counterexample(i, cfg, key, op, parents));
          }
        }
        if (cfg.stop_after_violated != 0 &&
            (res.props_violated & cfg.stop_after_violated) ==
                cfg.stop_after_violated) {
          res.early_stopped = true;
          res.states = visited.size();
          return res;
        }
      }
      const u64 nkey = suc->next.pack();
      if (visited.count(nkey) != 0) continue;
      if (visited.size() >= cfg.max_states) {
        res.state_capped = true;
        continue;
      }
      visited.insert(nkey);
      parents.emplace(nkey, Edge{key, op});
      frontier_states.emplace(nkey, suc->next);
      queue.emplace_back(nkey, depth + 1);
    }
  }
  res.states = visited.size();
  res.complete = !res.depth_capped && !res.state_capped;
  return res;
}

const Counterexample* CheckResult::counterexample_for(unsigned prop_idx) const {
  for (const auto& ce : counterexamples) {
    if (ce.prop == prop_idx) return &ce;
  }
  return nullptr;
}

std::string CheckResult::format() const {
  std::ostringstream os;
  os << states << " state(s), " << transitions << " transition(s), depth "
     << depth;
  if (complete) os << " (closure complete)";
  if (depth_capped) os << " (depth-capped)";
  if (state_capped) os << " (state-capped)";
  if (early_stopped) os << " (stopped at first target violation)";
  os << "\n";
  for (unsigned i = 0; i < kNumProps; ++i) {
    const u8 bit = static_cast<u8>(1u << i);
    if ((props_checked & bit) == 0) continue;
    os << "  " << prop_name(i) << " — " << prop_text(i) << ": ";
    if ((props_violated & bit) == 0) {
      os << (complete ? "HOLDS (exhaustive within bound)" : "holds within bound");
    } else {
      os << "VIOLATED";
      if (const Counterexample* ce = counterexample_for(i))
        os << " (" << ce->steps.size() << "-step counterexample)";
    }
    os << "\n";
  }
  for (const auto& ce : counterexamples) {
    os << "counterexample for " << prop_name(ce.prop) << ":\n";
    for (size_t i = 0; i < ce.steps.size(); ++i) {
      const Step& st = ce.steps[i];
      os << "  " << i + 1 << ". " << describe(st.op);
      if (!st.note.empty()) os << "  [" << st.note << "]";
      os << "\n";
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Mutation matrix.

std::vector<MutationEntry> mutation_matrix(const ModelConfig& base) {
  std::vector<MutationEntry> m;
  {  // P1 needs the walker check *and* the token check gone: token
     // validation alone keeps satp on issued (in-region) roots.
    MutationEntry e{"ptw", base, kP1, kP2, ""};
    e.cfg.ptw_check = false;
    e.cfg.token_check = false;
    e.rationale =
        "satp.S off and switch_mm unguarded: a hijacked pgd reaches an "
        "attacker hierarchy in normal memory and the walker consumes it";
    m.push_back(e);
  }
  {  // P2: token validation is exactly the root-provenance check.
    MutationEntry e{"token", base, kP2, 0, ""};
    e.cfg.token_check = false;
    e.rationale =
        "switch_mm no longer matches pgd against the issued token: any "
        "redirected PCB pointer lands in satp";
    m.push_back(e);
  }
  {  // P3: the S bit is what makes the token table unwritable.
    MutationEntry e{"sbit", base, kP3, kP2, ""};
    e.cfg.s_bit = false;
    e.rationale =
        "regular stores reach the token table: a forged entry binds a "
        "second live process to the same page table";
    m.push_back(e);
  }
  {  // P4: the zero check is the overlapping-allocation detector.
    MutationEntry e{"zero", base, kP4, kP3, ""};
    e.cfg.zero_check = false;
    e.rationale =
        "a corrupted free list re-issues a live (non-zero) PT page and the "
        "allocator no longer notices";
    m.push_back(e);
  }
  {  // Defence-in-depth floor: the walker check alone being off breaks
     // nothing — token validation still pins satp to issued roots.
    MutationEntry e{"ptw-alone", base, 0, 0, ""};
    e.cfg.ptw_check = false;
    e.rationale =
        "satp.S off but token validation intact: every reachable satp root "
        "is still a kernel-issued in-region table, so all properties hold";
    m.push_back(e);
  }
  if (base.nharts >= 2) {
    // Appended (never reordered) and only under an SMP base, so the
    // single-hart matrix — and everything golden-pinned to it — is intact.
    MutationEntry e{"ipi", base, kP2, 0, ""};
    e.cfg.ipi = false;
    e.rationale =
        "exit_mm skips the shootdown IPI: a remote hart stays parked on the "
        "retired root, and once the allocator recycles that page into "
        "another process's tables the hart's next user access runs on an "
        "address space the kernel never issued to it";
    m.push_back(e);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Export.

std::string to_dot(const Counterexample& ce) {
  std::ostringstream os;
  os << "digraph ptmc_ce {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  os << "  s0 [label=\"" << telemetry::json_escape(describe(State::initial()))
     << "\"];\n";
  for (size_t i = 0; i < ce.steps.size(); ++i) {
    const Step& st = ce.steps[i];
    const bool bad = st.violations != 0;
    os << "  s" << i + 1 << " [label=\""
       << telemetry::json_escape(describe(st.after)) << "\"";
    if (bad) os << ", color=red, penwidth=2";
    os << "];\n";
    os << "  s" << i << " -> s" << i + 1 << " [label=\""
       << telemetry::json_escape(describe(st.op)) << "\"";
    if (bad) os << ", color=red";
    os << "];\n";
  }
  os << "  label=\"ptmc counterexample: " << prop_name(ce.prop) << " — "
     << telemetry::json_escape(prop_text(ce.prop)) << "\";\n}\n";
  return os.str();
}

namespace {

void write_config(telemetry::JsonWriter& w, const ModelConfig& cfg) {
  w.begin_object()
      .kv("s_bit", cfg.s_bit)
      .kv("ptw_check", cfg.ptw_check)
      .kv("token_check", cfg.token_check)
      .kv("zero_check", cfg.zero_check)
      .kv("csr_gadget", cfg.csr_gadget)
      .kv("allow_grow", cfg.allow_grow)
      .kv("max_depth", static_cast<u64>(cfg.max_depth))
      .kv("max_states", cfg.max_states);
  // SMP / backend-capability keys are emitted only when they deviate from
  // the historical model, keeping single-hart PTStore JSON byte-identical.
  if (cfg.nharts > 1) {
    w.kv("nharts", static_cast<u64>(cfg.nharts)).kv("ipi", cfg.ipi);
  }
  if (cfg.verify_on_walk) w.kv("verify_on_walk", true);
  if (cfg.cred_unforgeable) w.kv("cred_unforgeable", true);
  w.end_object();
}

}  // namespace

std::string to_json(const CheckResult& r) {
  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.begin_object();
  w.key("properties").begin_array();
  for (unsigned i = 0; i < kNumProps; ++i) {
    const u8 bit = static_cast<u8>(1u << i);
    if ((r.props_checked & bit) == 0) continue;
    w.begin_object()
        .kv("name", prop_name(i))
        .kv("text", prop_text(i))
        .kv("violated", (r.props_violated & bit) != 0)
        .end_object();
  }
  w.end_array();
  w.kv("complete", r.complete)
      .kv("depth_capped", r.depth_capped)
      .kv("state_capped", r.state_capped)
      .kv("early_stopped", r.early_stopped)
      .kv("states", r.states)
      .kv("transitions", r.transitions)
      .kv("depth", static_cast<u64>(r.depth));
  w.key("counterexamples").begin_array();
  for (const auto& ce : r.counterexamples) {
    w.begin_object().kv("property", prop_name(ce.prop));
    w.key("config");
    write_config(w, ce.cfg);
    w.key("steps").begin_array();
    for (const Step& st : ce.steps) {
      w.begin_object()
          .kv("op", describe(st.op))
          .kv("state", describe(st.after))
          .kv("note", st.note)
          .kv("violations", static_cast<u64>(st.violations))
          .end_object();
    }
    w.end_array().end_object();
  }
  w.end_array().end_object();
  return os.str();
}

}  // namespace ptstore::analysis::ptmc
