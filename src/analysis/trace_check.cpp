#include "analysis/trace_check.h"

#include <set>
#include <sstream>

namespace ptstore::analysis {
namespace {

std::string hex(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

CrossCheckResult cross_check(const Image& img, const LintReport& report,
                             const std::deque<TraceRecord>& trace,
                             u64 sr_base, u64 sr_end) {
  CrossCheckResult res;
  std::set<u64> exercised_unknown;
  for (const TraceRecord& rec : trace) {
    if (!img.contains(rec.pc)) {
      ++res.skipped;
      continue;
    }
    ++res.checked;
    if (!report.reachable.count(rec.pc)) {
      res.contradictions.push_back(
          "executed pc " + hex(rec.pc) + " (" + img.locate(rec.pc) +
          ") is statically unreachable");
      continue;
    }
    if (!rec.has_ea) continue;
    ++res.mem_checked;
    const auto it = report.access_class.find(rec.pc);
    if (it == report.access_class.end()) {
      res.contradictions.push_back(
          "memory access at " + hex(rec.pc) + " (" + img.locate(rec.pc) +
          ") has no static classification");
      continue;
    }
    const bool in_region = rec.ea >= sr_base && rec.ea < sr_end;
    switch (it->second) {
      case AccessClass::kNonSecure:
        if (in_region) {
          res.contradictions.push_back(
              "access at " + hex(rec.pc) + " (" + img.locate(rec.pc) +
              ") classified non-secure but touched " + hex(rec.ea) +
              " inside the secure region");
        }
        break;
      case AccessClass::kSecure:
        if (!in_region) {
          res.contradictions.push_back(
              "access at " + hex(rec.pc) + " (" + img.locate(rec.pc) +
              ") classified secure but touched " + hex(rec.ea) +
              " outside the secure region");
        }
        break;
      case AccessClass::kUnknown:
        ++res.unknown;
        exercised_unknown.insert(rec.pc);
        break;
    }
  }
  // Coverage sweep: std::map iteration keeps the unexercised list in pc
  // order, so the report is deterministic.
  for (const auto& [pc, cls] : report.access_class) {
    if (cls != AccessClass::kUnknown) continue;
    ++res.unknown_sites;
    if (exercised_unknown.count(pc)) {
      ++res.unknown_sites_exercised;
    } else {
      res.unexercised.push_back(hex(pc) + " (" + img.locate(pc) + ")");
    }
  }
  return res;
}

std::string CrossCheckResult::format() const {
  std::ostringstream os;
  os << checked << " record(s) checked, " << mem_checked
     << " memory access(es) compared, " << unknown << " unknown, " << skipped
     << " outside the image\n";
  os << "unknown-site coverage: " << unknown_sites_exercised << "/"
     << unknown_sites << " exercised\n";
  for (const std::string& u : unexercised) {
    os << "never exercised: unknown-class access at " << u << "\n";
  }
  for (const std::string& c : contradictions) os << "contradiction: " << c << "\n";
  os << (ok() ? "no contradictions\n" : "CROSS-CHECK FAILED\n");
  return os.str();
}

}  // namespace ptstore::analysis
