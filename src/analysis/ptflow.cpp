#include "analysis/ptflow.h"

#include <deque>
#include <sstream>

#include "isa/csr.h"

namespace ptstore::analysis {
namespace {

using isa::Inst;
using isa::Op;

constexpr int kWidenAfter = 4;
constexpr u8 kRegRa = 1;

bool writes_csr(const Inst& in) {
  switch (in.op) {
    case Op::kCsrrw:
    case Op::kCsrrwi:
      return true;
    case Op::kCsrrs:
    case Op::kCsrrc:
    case Op::kCsrrsi:  // rs1 field holds the uimm for the immediate forms.
    case Op::kCsrrci:
      return in.rs1 != 0;
    default:
      return false;
  }
}

void clobber_caller_saved(FlowState& st) {
  static constexpr u8 kCallerSaved[] = {1,  5,  6,  7,  10, 11, 12, 13, 14,
                                        15, 16, 17, 28, 29, 30, 31};
  for (const u8 r : kCallerSaved) {
    st.regs[r] = AbsVal::top();
    st.taint[r] = 0;
  }
}

/// Substitute a summary's symbolic argument bits with the caller's actual
/// taint at the call site.
TaintSet instantiate(TaintSet sum, const std::array<TaintSet, 32>& caller) {
  TaintSet out = sum & kTaintSecretMask;
  for (unsigned i = 0; i < 8; ++i) {
    if (sum & taint_arg(i)) out |= caller[10 + i];
  }
  return out;
}

/// Bottom-up summary of one function, computed against symbolic arguments.
struct FnSummary {
  TaintSet ret_taint[2] = {0, 0};  ///< a0/a1 at return.
  bool mediates = false;           ///< Every return path saw mediation.
  bool writes_cred = false;        ///< Every return path wrote the credential.
  bool is_mediation = false;       ///< The function IS a mediation entry.
  bool is_sink = false;            ///< The function IS a T3 sink.
  bool under_m2 = false;           ///< bind_root/rebind_root obligation.

  bool join_effects(const FnSummary& o) {
    bool changed = false;
    for (int i = 0; i < 2; ++i) {
      const TaintSet t = static_cast<TaintSet>(ret_taint[i] | o.ret_taint[i]);
      if (t != ret_taint[i]) {
        ret_taint[i] = t;
        changed = true;
      }
    }
    if (o.mediates && !mediates) {
      mediates = true;
      changed = true;
    }
    if (o.writes_cred && !writes_cred) {
      writes_cred = true;
      changed = true;
    }
    return changed;
  }
};

struct AccessInfo {
  bool is_load = false;
  bool is_store = false;
  bool pt = false;
  AbsVal addr;
  TaintSet value_taint = 0;  ///< Taint of the stored value (stores only).
};

AccessInfo classify_access(const Inst& in, const FlowState& st) {
  AccessInfo info;
  if (in.is_amo()) {
    info.is_load = true;
    info.is_store = true;
    info.addr = st.regs[in.rs1];
    info.value_taint = st.taint[in.rs2];
    return info;
  }
  if (in.is_load() || in.op == Op::kLdPt) {
    info.is_load = true;
    info.pt = in.op == Op::kLdPt;
    info.addr = AbsVal::add_imm(st.regs[in.rs1], in.imm);
    return info;
  }
  if (in.is_store() || in.op == Op::kSdPt) {
    info.is_store = true;
    info.pt = in.op == Op::kSdPt;
    info.addr = AbsVal::add_imm(st.regs[in.rs1], in.imm);
    info.value_taint = st.taint[in.rs2];
    return info;
  }
  return info;
}

/// Exit-state accumulator for one function analysis: AND over must-flags,
/// OR over return taints, across every return/tail-call path.
struct ExitAcc {
  bool any = false;
  bool mediated = true;
  bool cred_written = true;
  TaintSet ret[2] = {0, 0};

  void add(bool med, bool cred, TaintSet a0, TaintSet a1) {
    any = true;
    mediated = mediated && med;
    cred_written = cred_written && cred;
    ret[0] = static_cast<TaintSet>(ret[0] | a0);
    ret[1] = static_cast<TaintSet>(ret[1] | a1);
  }
};

class FlowVerifier {
 public:
  FlowVerifier(const Image& img, const FlowSpec& spec) : img_(img), spec_(spec) {}

  FlowReport run() {
    cg_ = CallGraph::build(img_, spec_.extra_roots);
    report_.function_count = cg_.functions().size();
    for (const Function& fn : cg_.functions()) {
      report_.callsite_count += fn.calls.size();
      summaries_[fn.entry] = seed_summary(fn);
    }
    compute_summaries();
    solve_contexts();
    check();
    return std::move(report_);
  }

 private:
  FnSummary seed_summary(const Function& fn) const {
    FnSummary s;
    s.is_mediation = name_in(fn.name, spec_.mediation_symbols);
    s.is_sink = name_in(fn.name, spec_.sink_symbols);
    s.under_m2 = name_in(fn.name, spec_.bind_symbols);
    return s;
  }

  static bool name_in(const std::string& name, const std::vector<std::string>& list) {
    for (const std::string& s : list) {
      if (s == name) return true;
    }
    return false;
  }

  // ---- the shared intra-procedural engine ----

  /// Analyze one function from `entry_state`. In check mode diags are
  /// emitted; context propagations to callees are recorded in `ctx_out`
  /// when non-null. Returns the function's exit accumulator.
  ExitAcc analyze(const Function& fn, const FlowState& entry_state,
                  bool check_mode,
                  std::map<u64, FlowState>* ctx_out) {
    std::map<u64, std::pair<FlowState, int>> states;
    std::set<u64> owned(fn.blocks.begin(), fn.blocks.end());
    ExitAcc exits;

    std::deque<u64> work;
    FlowState seed = entry_state;
    if (summaries_[fn.entry].is_mediation) seed.mediated = true;
    states[fn.entry] = {seed, 0};
    work.push_back(fn.entry);

    while (!work.empty()) {
      const u64 at = work.front();
      work.pop_front();
      const BasicBlock* bb = cg_.cfg().block_at(at);
      if (bb == nullptr || owned.count(at) == 0) continue;
      FlowState st = states[at].first;

      for (u64 pc = bb->start; pc < bb->end; pc += 4) {
        const Inst in = img_.inst_at(pc);
        const AccessInfo acc = classify_access(in, st);

        if (acc.is_store) {
          if (check_mode) check_store(pc, acc, st);
          // M2 bookkeeping: a store provably confined to the credential
          // home commits the credential.
          if (spec_.cred_end > spec_.cred_base &&
              acc.addr.inside(spec_.cred_base, spec_.cred_end)) {
            st.cred_written = true;
          }
        }
        if (check_mode && writes_csr(in) &&
            (static_cast<u32>(in.imm) & 0xFFF) == isa::csr::kSatp) {
          if (spec_.m2 && summaries_[fn.entry].under_m2 && !st.cred_written) {
            diag(FlowDiagKind::kCredAfterWalkable, Severity::kViolation, pc,
                 "root becomes walkable before the credential is written "
                 "(bind path writes satp first)");
          }
        }

        st.step(pc, in);
        if (acc.is_load && in.rd != 0) {
          // Re-taint the loaded value from the spec's secret sources.
          st.taint[in.rd] = spec_.secret_taint(acc.addr);
        }
        if (in.is_jump() && in.rd != 0) {
          st.regs[in.rd] = AbsVal::exact(pc + 4);
          st.taint[in.rd] = 0;
        }
      }

      const u64 term_pc = bb->end - 4;
      const Inst term = img_.inst_at(term_pc);
      const CallSite* cs = fn.call_at(term_pc);

      if (cs != nullptr) {
        handle_call(fn, *cs, term_pc, st, check_mode, ctx_out, &exits,
                    [&](u64 to, const FlowState& next) {
                      propagate(states, owned, to, next, work);
                    });
        continue;
      }
      if (term.op == Op::kJalr && term.rd == 0 && term.rs1 == kRegRa) {
        exits.add(st.mediated, st.cred_written, st.taint[10], st.taint[11]);
        continue;
      }
      for (const Edge& e : bb->succs) propagate(states, owned, e.to, st, work);
    }
    return exits;
  }

  template <typename Propagate>
  void handle_call(const Function& fn, const CallSite& cs, u64 pc,
                   const FlowState& at_call, bool check_mode,
                   std::map<u64, FlowState>* ctx_out, ExitAcc* exits,
                   Propagate&& propagate_next) {
    (void)fn;
    // T3: a secret reaching a sink's argument registers (a0..a2).
    if (check_mode && spec_.t3) {
      for (const u64 t : cs.targets) {
        auto it = summaries_.find(t);
        if (it == summaries_.end() || !it->second.is_sink) continue;
        const TaintSet args = static_cast<TaintSet>(
            (at_call.taint[10] | at_call.taint[11] | at_call.taint[12]) &
            kTaintSecretMask);
        if (args != 0) {
          diag(FlowDiagKind::kSecretToSink, Severity::kViolation, pc,
               "secret " + describe_taint(args) +
                   " reaches trace/telemetry sink '" + callee_name(t) + "'");
        }
      }
    }

    // Record the calling context for every resolved callee.
    if (ctx_out != nullptr) {
      for (const u64 t : cs.targets) {
        auto it = ctx_out->find(t);
        if (it == ctx_out->end()) {
          (*ctx_out)[t] = at_call;
        } else {
          it->second.join_from(at_call);
        }
      }
    }

    // Summary effects of the callee set: must-flags AND over all possible
    // targets, return taint OR.
    bool callee_mediates = cs.resolved && !cs.targets.empty();
    bool callee_writes_cred = callee_mediates;
    TaintSet ret0 = 0, ret1 = 0;
    for (const u64 t : cs.targets) {
      const FnSummary& sum = summaries_[t];
      callee_mediates = callee_mediates && (sum.mediates || sum.is_mediation);
      callee_writes_cred = callee_writes_cred && sum.writes_cred;
      ret0 |= instantiate(sum.ret_taint[0], at_call.taint);
      ret1 |= instantiate(sum.ret_taint[1], at_call.taint);
    }
    if (!cs.resolved) {
      if (check_mode) {
        diag(FlowDiagKind::kUnresolvedCall, Severity::kNote, pc,
             "indirect call target is not statically resolvable; callee "
             "effects over-approximated (havoc)");
        ++report_.unresolved_calls;
      }
    }

    if (cs.tail) {
      // The callee's returns are this function's returns. Must-facts that
      // held at the transfer survive; the callee may add its own.
      exits->add(at_call.mediated || callee_mediates,
                 at_call.cred_written || callee_writes_cred, ret0, ret1);
      return;
    }

    FlowState next = at_call;
    clobber_caller_saved(next);
    next.taint[10] = ret0;
    next.taint[11] = ret1;
    if (callee_mediates) next.mediated = true;
    if (callee_writes_cred) next.cred_written = true;
    const BasicBlock* bb = cg_.cfg().block_containing(pc);
    if (bb != nullptr) {
      for (const Edge& e : bb->succs) {
        if (e.kind == EdgeKind::kCallReturn) propagate_next(e.to, next);
      }
    }
  }

  void propagate(std::map<u64, std::pair<FlowState, int>>& states,
                 const std::set<u64>& owned, u64 to, const FlowState& st,
                 std::deque<u64>& work) {
    if (owned.count(to) == 0) return;
    auto& slot = states[to];
    const FlowState before = slot.first;
    if (!slot.first.join_from(st)) return;
    if (++slot.second > kWidenAfter && before.reached) {
      for (unsigned r = 1; r < 32; ++r) {
        if (slot.first.regs[r] != before.regs[r]) {
          slot.first.regs[r] = AbsVal::top();
        }
      }
    }
    work.push_back(to);
  }

  // ---- rule checks ----

  void check_store(u64 pc, const AccessInfo& acc, const FlowState& st) {
    const TaintSet secret =
        static_cast<TaintSet>(acc.value_taint & kTaintSecretMask);
    if (secret != 0) {
      if (spec_.t2 && acc.addr.may_overlap(spec_.user_base, spec_.user_end)) {
        diag(FlowDiagKind::kSecretToUser, Severity::kViolation, pc,
             "secret " + describe_taint(secret) +
                 " stored to U-mode-readable memory, address " +
                 acc.addr.describe());
        return;
      }
      if (spec_.t1 && !acc.addr.inside(spec_.sr_base, spec_.sr_end) &&
          !spec_.sanctioned_dest(acc.addr)) {
        diag(FlowDiagKind::kSecretEscapes, Severity::kViolation, pc,
             "secret " + describe_taint(secret) +
                 " escapes the secure region, address " + acc.addr.describe());
        return;
      }
    }
    if (spec_.m1 && acc.addr.may_overlap(spec_.pt_base, spec_.pt_end)) {
      const bool mediated =
          st.mediated || (acc.pt && spec_.pt_insn_mediates);
      if (!mediated) {
        if (acc.addr.is_top()) {
          diag(FlowDiagKind::kUnconstrainedStore, Severity::kNote, pc,
               "store address is unconstrained; PT-page aliasing checked "
               "dynamically");
        } else {
          diag(FlowDiagKind::kUnmediatedPtStore, Severity::kViolation, pc,
               "store may alias a page-table page (address " +
                   acc.addr.describe() +
                   ") without a dominating mediation call");
        }
      }
    }
  }

  // ---- phase drivers ----

  void compute_summaries() {
    // bottom_up() keeps SCC members adjacent: iterate each group until its
    // summaries stop changing (recursion converges; taint only grows and
    // must-flags only flip pessimistic->established).
    const std::vector<u64>& order = cg_.bottom_up();
    size_t i = 0;
    while (i < order.size()) {
      size_t j = i;
      const size_t scc = cg_.scc_id(order[i]);
      while (j < order.size() && cg_.scc_id(order[j]) == scc) ++j;
      for (int round = 0; round < 10; ++round) {
        bool changed = false;
        for (size_t k = i; k < j; ++k) {
          const Function* fn = cg_.function_at(order[k]);
          if (fn == nullptr) continue;
          const ExitAcc exits =
              analyze(*fn, FlowState::entry(/*symbolic_args=*/true),
                      /*check_mode=*/false, nullptr);
          FnSummary next;
          if (exits.any) {
            next.ret_taint[0] = exits.ret[0];
            next.ret_taint[1] = exits.ret[1];
            next.mediates = exits.mediated;
            next.writes_cred = exits.cred_written;
          }
          changed = summaries_[fn->entry].join_effects(next) || changed;
        }
        if (!changed) break;
      }
      i = j;
    }
  }

  void solve_contexts() {
    std::deque<u64> work;
    const auto seed = [&](u64 e) {
      if (cg_.function_at(e) == nullptr) return;
      if (ctx_[e].join_from(FlowState::entry(/*symbolic_args=*/false))) {
        work.push_back(e);
      }
    };
    seed(img_.base);
    for (const u64 r : spec_.extra_roots) seed(r);

    while (!work.empty()) {
      const u64 at = work.front();
      work.pop_front();
      const Function* fn = cg_.function_at(at);
      if (fn == nullptr) continue;
      std::map<u64, FlowState> calls;
      analyze(*fn, ctx_[at], /*check_mode=*/false, &calls);
      for (auto& [callee, st] : calls) {
        FlowState& dst = ctx_[callee];
        const FlowState before = dst;
        if (!dst.join_from(st)) continue;
        if (++ctx_joins_[callee] > kWidenAfter && before.reached) {
          for (unsigned r = 1; r < 32; ++r) {
            if (dst.regs[r] != before.regs[r]) dst.regs[r] = AbsVal::top();
          }
        }
        work.push_back(callee);
      }
    }
  }

  void check() {
    for (const Function& fn : cg_.functions()) {
      auto it = ctx_.find(fn.entry);
      if (it == ctx_.end() || !it->second.reached) continue;
      analyze(fn, it->second, /*check_mode=*/true, nullptr);
    }
  }

  std::string callee_name(u64 entry) const {
    const Function* fn = cg_.function_at(entry);
    return fn != nullptr ? fn->name : "?";
  }

  void diag(FlowDiagKind kind, Severity sev, u64 pc, std::string message) {
    if (!seen_.insert({static_cast<u8>(kind), pc}).second) return;
    FlowDiag d;
    d.kind = kind;
    d.sev = sev;
    d.pc = pc;
    d.message = img_.locate(pc) + ": " + std::move(message);
    const u64 lo = (pc >= img_.base + 8) ? pc - 8 : img_.base;
    const u64 hi = (pc + 12 <= img_.end()) ? pc + 12 : img_.end();
    for (u64 p = lo; p < hi; p += 4) {
      if (!img_.contains(p)) continue;
      std::ostringstream os;
      os << (p == pc ? " => " : "    ") << "0x" << std::hex << p << "  "
         << isa::disassemble(img_.inst_at(p));
      d.context.push_back(os.str());
    }
    report_.diags.push_back(std::move(d));
  }

  const Image& img_;
  const FlowSpec& spec_;
  CallGraph cg_;
  std::map<u64, FnSummary> summaries_;
  std::map<u64, FlowState> ctx_;
  std::map<u64, int> ctx_joins_;
  std::set<std::pair<u8, u64>> seen_;
  FlowReport report_;
};

}  // namespace

FlowSpec FlowSpec::for_backend(BackendKind k, u64 sr_base, u64 sr_end) {
  const FlowAnnotation& ann = flow_annotation(k);
  FlowSpec s;
  s.backend = ann.kind;
  s.sr_base = sr_base;
  s.sr_end = sr_end;
  // The PT-page pool: the paper places page tables in the secure region;
  // DPTI's domain and PTAuth's signed pool model the same address range.
  s.pt_base = sr_base;
  s.pt_end = sr_end;
  s.user_base = kUserSpaceBase;
  s.user_end = kUserSpaceBase + GiB(1);

  // Image geometry shared with the corpus builders: the token table and
  // domain registry live inside the secure region, the MAC key in monitor
  // memory at the region base, and PCBs one MiB below the region.
  const u64 token = sr_base + 0x800;
  const u64 domain = sr_base + 0x1000;
  const u64 mac = sr_base + 0x600;
  const u64 pcb = sr_base - MiB(1);
  for (const SecretClass c : ann.secrets) {
    switch (c) {
      case SecretClass::kToken:
        s.secrets.push_back({token, token + 0x100, kTaintToken, "token table"});
        break;
      case SecretClass::kMacKey:
        s.secrets.push_back({mac, mac + 0x40, kTaintMacKey, "MAC key"});
        break;
      case SecretClass::kCredential:
        s.secrets.push_back(
            {pcb, pcb + 0x1000, kTaintCredential, "PCB credential field"});
        break;
      case SecretClass::kDomainRoot:
        s.secrets.push_back(
            {domain, domain + 0x100, kTaintDomainRoot, "domain registry"});
        break;
    }
  }
  switch (ann.kind) {
    case BackendKind::kPtstore:
      s.cred_base = token;
      s.cred_end = token + 0x100;
      break;
    case BackendKind::kDpti:
      s.cred_base = domain;
      s.cred_end = domain + 0x100;
      break;
    case BackendKind::kPtauth:
      s.cred_base = pcb;
      s.cred_end = pcb + 0x1000;
      break;
    default:
      break;
  }
  for (const char* sym : ann.mediation_symbols) s.mediation_symbols.push_back(sym);
  for (const char* sym : ann.bind_symbols) s.bind_symbols.push_back(sym);
  for (const char* sym : ann.sink_symbols) s.sink_symbols.push_back(sym);
  s.t1 = s.t2 = s.t3 = ann.taint_rules;
  s.m1 = ann.mediation_rule;
  s.m2 = ann.bind_order_rule;
  s.pt_insn_mediates = ann.pt_insn_mediates;
  return s;
}

TaintSet FlowSpec::secret_taint(const AbsVal& addr) const {
  TaintSet t = 0;
  for (const SecretRange& r : secrets) {
    // ⊤ addresses are *not* tainted: an unconstrained pointer may read
    // anything, and tainting it would mark every spilled reload secret.
    // The note-level store diagnostics keep those sites visible instead.
    if (addr.is_top()) continue;
    if (addr.may_overlap(r.base, r.end)) t |= r.cls;
  }
  return t;
}

bool FlowSpec::sanctioned_dest(const AbsVal& addr) const {
  if (cred_end > cred_base && addr.inside(cred_base, cred_end)) return true;
  for (const SecretRange& r : secrets) {
    if (addr.inside(r.base, r.end)) return true;
  }
  return false;
}

const char* flow_diag_kind_name(FlowDiagKind k) {
  switch (k) {
    case FlowDiagKind::kSecretEscapes: return "secret-escapes";
    case FlowDiagKind::kSecretToUser: return "secret-to-user";
    case FlowDiagKind::kSecretToSink: return "secret-to-sink";
    case FlowDiagKind::kUnmediatedPtStore: return "unmediated-pt-store";
    case FlowDiagKind::kCredAfterWalkable: return "cred-after-walkable";
    case FlowDiagKind::kUnresolvedCall: return "unresolved-call";
    case FlowDiagKind::kUnconstrainedStore: return "unconstrained-store";
  }
  return "?";
}

size_t FlowReport::violation_count() const {
  size_t n = 0;
  for (const FlowDiag& d : diags) n += d.sev == Severity::kViolation ? 1 : 0;
  return n;
}

std::vector<const FlowDiag*> FlowReport::violations() const {
  std::vector<const FlowDiag*> out;
  for (const FlowDiag& d : diags) {
    if (d.sev == Severity::kViolation) out.push_back(&d);
  }
  return out;
}

std::string FlowReport::format() const {
  std::ostringstream os;
  for (const FlowDiag& d : diags) {
    os << (d.sev == Severity::kViolation ? "violation" : "note") << " ["
       << flow_diag_kind_name(d.kind) << "] at 0x" << std::hex << d.pc
       << std::dec << ": " << d.message << "\n";
    for (const std::string& line : d.context) os << line << "\n";
  }
  os << diags.size() << " diagnostic(s), " << violation_count()
     << " violation(s), " << function_count << " function(s), "
     << callsite_count << " call site(s)\n";
  return os.str();
}

FlowReport flow_verify(const Image& img, const FlowSpec& spec) {
  return FlowVerifier(img, spec).run();
}

}  // namespace ptstore::analysis
