#include "analysis/pt_audit.h"

#include <set>
#include <sstream>

#include "kernel/pagetable.h"
#include "mmu/pte.h"

namespace ptstore::analysis {
namespace {

std::string hex(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

class Auditor {
 public:
  Auditor(Kernel& kernel, PhysMem& mem)
      : mem_(mem),
        sr_(kernel.sbi().sr_get()),
        secure_zone_(kernel.iso().secure_zone && kernel.sbi().initialized()),
        tokens_(kernel.iso().issue_tokens) {}

  void walk_root(PhysAddr root, const std::string& owner) {
    walk_table(root, 2, true, owner);
  }

  void check_tokens(Kernel& kernel) {
    if (!tokens_) return;
    for (const auto& [pid, proc] : kernel.processes().all()) {
      ++report_.tokens_checked;
      const std::string who = "pid " + std::to_string(pid);
      if (!mem_.is_dram(proc->pcb, kPcbSize)) {
        finding(who + ": PCB " + hex(proc->pcb) + " is not DRAM-backed");
        continue;
      }
      const u64 token = mem_.read_u64(proc->pcb_token_field());
      const u64 pgd = mem_.read_u64(proc->pcb_pgd_field());
      if (!sr_.contains(token, kTokenSize)) {
        finding(who + ": token pointer " + hex(token) +
                " lies outside the secure region");
        continue;
      }
      const u64 pt_ptr = mem_.read_u64(token + kTokenPtPtrOff);
      const u64 user_ptr = mem_.read_u64(token + kTokenUserPtrOff);
      if (user_ptr != proc->pcb_token_field()) {
        finding(who + ": token " + hex(token) + " binds PCB field " +
                hex(user_ptr) + ", expected " + hex(proc->pcb_token_field()));
      }
      if (pt_ptr != pgd) {
        finding(who + ": token " + hex(token) + " protects pgd " +
                hex(pt_ptr) + " but the PCB holds " + hex(pgd));
      }
    }
  }

  AuditReport take() { return std::move(report_); }

 private:
  void walk_table(PhysAddr table, int level, bool kernel_half,
                  const std::string& owner) {
    if (!visited_.insert(table).second) return;
    ++report_.tables_checked;
    if (!mem_.is_dram(table, kPageSize)) {
      finding(owner + ": page-table page " + hex(table) +
              " is not DRAM-backed");
      return;
    }
    if (secure_zone_ && !sr_.contains(table, kPageSize)) {
      finding(owner + ": page-table page " + hex(table) +
              " lies outside the secure region");
    }
    for (unsigned idx = 0; idx < 512; ++idx) {
      const u64 entry = mem_.read_u64(table + 8 * idx);
      if (!pte::valid(entry)) continue;
      ++report_.ptes_checked;
      const bool khalf = level == 2 ? idx < kUserRootIndex : kernel_half;
      const std::string at =
          owner + " L" + std::to_string(level) + "[" + std::to_string(idx) + "]";
      if (pte::malformed(entry)) {
        finding(at + ": reserved W-without-R encoding " + hex(entry));
        continue;
      }
      if (pte::is_table(entry)) {
        if (level == 0) {
          finding(at + ": table pointer at leaf level");
          continue;
        }
        walk_table(pte::pa(entry), level - 1, khalf, owner);
        continue;
      }
      // Leaf. Superpages must be size-aligned; MMIO identity leaves are
      // legitimate, so no DRAM requirement here.
      const u64 leaf_span = u64{1} << (12 + 9 * level);
      if ((pte::pa(entry) & (leaf_span - 1)) != 0) {
        finding(at + ": misaligned superpage leaf " + hex(entry));
      }
      if (khalf && (entry & pte::kU)) {
        finding(at + ": kernel-half mapping is user-accessible" +
                std::string((entry & pte::kW) ? " and writable" : "") + " (" +
                hex(entry) + ")");
      }
    }
  }

  void finding(std::string f) { report_.findings.push_back(std::move(f)); }

  PhysMem& mem_;
  SecureRegion sr_;
  bool secure_zone_;
  bool tokens_;
  std::set<PhysAddr> visited_;
  AuditReport report_;
};

}  // namespace

AuditReport audit_secure_region(Kernel& kernel, PhysMem& mem) {
  Auditor a(kernel, mem);
  a.walk_root(kernel.kernel_root(), "kernel");
  for (const auto& [pid, proc] : kernel.processes().all()) {
    const u64 pgd = mem.read_u64(proc->pcb_pgd_field());
    a.walk_root(pgd, "pid " + std::to_string(pid));
  }
  a.check_tokens(kernel);
  return a.take();
}

std::string AuditReport::format() const {
  std::ostringstream os;
  os << tables_checked << " table page(s), " << ptes_checked << " PTE(s), "
     << tokens_checked << " token(s) audited\n";
  for (const std::string& f : findings) os << "finding: " << f << "\n";
  os << (ok() ? "secure region well-formed\n" : "AUDIT FAILED\n");
  return os.str();
}

}  // namespace ptstore::analysis
