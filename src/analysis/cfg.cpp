#include "analysis/cfg.h"

#include <algorithm>
#include <deque>

namespace ptstore::analysis {

const char* edge_kind_name(EdgeKind k) {
  switch (k) {
    case EdgeKind::kFallthrough: return "fallthrough";
    case EdgeKind::kBranch: return "branch";
    case EdgeKind::kJump: return "jump";
    case EdgeKind::kCall: return "call";
    case EdgeKind::kCallReturn: return "call-return";
  }
  return "?";
}

std::vector<Edge> terminator_edges(const isa::Inst& in, u64 pc) {
  std::vector<Edge> out;
  if (in.is_branch()) {
    out.push_back({pc + static_cast<u64>(in.imm), EdgeKind::kBranch});
    out.push_back({pc + 4, EdgeKind::kFallthrough});
  } else if (in.op == isa::Op::kJal) {
    const u64 target = pc + static_cast<u64>(in.imm);
    if (in.rd != 0) {
      out.push_back({target, EdgeKind::kCall});
      out.push_back({pc + 4, EdgeKind::kCallReturn});
    } else {
      out.push_back({target, EdgeKind::kJump});
    }
  } else if (in.op == isa::Op::kJalr && in.rd != 0) {
    // Indirect call: the callee is unknown, but control conventionally
    // returns to pc+4 — keep analyzing the caller past the call site.
    out.push_back({pc + 4, EdgeKind::kCallReturn});
  }
  // jalr x0 (ret / computed goto), mret, sret, ebreak, wfi, illegal: no
  // statically resolvable successors.
  return out;
}

Cfg Cfg::build(const Image& img, const std::vector<u64>& extra_roots) {
  Cfg cfg;
  if (img.words.empty()) return cfg;

  // Pass 1: explore every reachable instruction, collecting block leaders.
  std::set<u64> leaders;
  std::deque<u64> work;
  auto add_root = [&](u64 pc) {
    if (img.contains(pc)) {
      leaders.insert(pc);
      work.push_back(pc);
    }
  };
  add_root(img.base);
  for (const u64 r : extra_roots) add_root(r);

  while (!work.empty()) {
    u64 pc = work.front();
    work.pop_front();
    while (img.contains(pc) && cfg.reachable_.insert(pc).second) {
      const isa::Inst in = img.inst_at(pc);
      if (!in.is_terminator()) {
        pc += 4;
        continue;
      }
      for (const Edge& e : terminator_edges(in, pc)) {
        if (img.contains(e.to)) {
          leaders.insert(e.to);
          work.push_back(e.to);
        }
      }
      break;
    }
    // Re-queued leader inside an already-explored run: still a leader.
  }

  // Pass 2: slice the reachable instruction stream into blocks at leaders
  // and terminators.
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    BasicBlock bb;
    bb.start = *it;
    u64 pc = bb.start;
    const auto next_leader = std::next(it);
    while (true) {
      const isa::Inst in = img.inst_at(pc);
      const u64 after = pc + 4;
      if (in.is_terminator()) {
        bb.end = after;
        if (in.op == isa::Op::kJalr) bb.indirect_exit = true;
        for (const Edge& e : terminator_edges(in, pc)) {
          if (img.contains(e.to)) {
            bb.succs.push_back(e);
          } else {
            bb.leaves_image = true;
          }
        }
        break;
      }
      if (!cfg.reachable_.count(after) ||
          (next_leader != leaders.end() && after == *next_leader)) {
        // Block runs into the next leader (or off the explored stream):
        // plain fallthrough.
        bb.end = after;
        if (cfg.reachable_.count(after)) {
          bb.succs.push_back({after, EdgeKind::kFallthrough});
        } else if (!img.contains(after)) {
          bb.leaves_image = true;  // Straight-line code runs off the image.
        }
        break;
      }
      pc = after;
    }
    cfg.by_start_[bb.start] = cfg.blocks_.size();
    cfg.blocks_.push_back(std::move(bb));
  }

  for (const BasicBlock& bb : cfg.blocks_) {
    for (const Edge& e : bb.succs) {
      auto it = cfg.by_start_.find(e.to);
      if (it != cfg.by_start_.end()) {
        cfg.blocks_[it->second].preds.push_back(bb.start);
      }
    }
  }
  return cfg;
}

const BasicBlock* Cfg::block_at(u64 start) const {
  auto it = by_start_.find(start);
  return it == by_start_.end() ? nullptr : &blocks_[it->second];
}

const BasicBlock* Cfg::block_containing(u64 pc) const {
  auto it = by_start_.upper_bound(pc);
  if (it == by_start_.begin()) return nullptr;
  --it;
  const BasicBlock& bb = blocks_[it->second];
  return pc < bb.end ? &bb : nullptr;
}

}  // namespace ptstore::analysis
