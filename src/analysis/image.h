// An assembled guest image as ptlint sees it: the instruction words, their
// load address, and the assembler's symbol table (text_asm labels or any
// caller-supplied names). This is the unit the static verifier analyzes —
// the analogue of the paper's "kernel binary produced by the modified LLVM
// back-end".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "isa/inst.h"
#include "isa/text_asm.h"

namespace ptstore::analysis {

struct Symbol {
  std::string name;
  u64 address = 0;
};

struct Image {
  u64 base = 0;
  std::vector<u32> words;
  std::vector<Symbol> symbols;  ///< Address order preferred, not required.

  u64 end() const { return base + 4 * words.size(); }
  u64 size_bytes() const { return 4 * words.size(); }

  /// True if `pc` names an instruction slot of this image. Phrased as an
  /// offset comparison so addresses near the top of the address space
  /// cannot wrap `pc + 4` back into range.
  bool contains(u64 pc) const {
    return pc >= base && pc - base < size_bytes() && ((pc - base) & 3) == 0;
  }

  /// Decode the instruction at `pc`; out-of-image or misaligned addresses
  /// yield Op::kIllegal instead of undefined behaviour, so callers fuzzing
  /// arbitrary pcs get a graceful diagnostic.
  isa::Inst inst_at(u64 pc) const {
    if (!contains(pc)) return isa::Inst{};
    return isa::decode(words[(pc - base) / 4]);
  }

  /// "symbol+0x18"-style location for diagnostics; falls back to
  /// "entry+offset" when no symbol precedes `pc`.
  std::string locate(u64 pc) const;

  /// Exact-address symbol lookup; nullptr when none.
  const Symbol* symbol_at(u64 address) const;

  /// Address of the first symbol with this name, if any.
  std::optional<u64> symbol_address(const std::string& name) const;

  /// Adopt a text_asm result (words + symbol table) loaded at `base`.
  static Image from_assembly(const isa::AsmResult& res, u64 base);
};

}  // namespace ptstore::analysis
