// Taint lattice for ptflow's interprocedural secret-flow analysis.
//
// A TaintSet is a bitset over two kinds of bits:
//   - secret-class bits (low byte): the value may carry a backend secret —
//     a PTStore token, the PTAuth MAC key, a PCB credential, or a DPTI
//     domain-registry root. These are seeded at loads from spec-declared
//     secret source ranges and checked at stores/sinks (rules T1–T3).
//   - symbolic argument bits (high byte): "depends on the taint of incoming
//     argument register a0..a7". These appear only inside bottom-up
//     function summaries, which are computed once against symbolic
//     arguments and instantiated per call site.
//
// The may-analysis joins by union; the two mediation must-flags (M1/M2)
// join by AND, exactly like ptlint's R3 "validated" bit.
#pragma once

#include <string>

#include "analysis/absval.h"

namespace ptstore::analysis {

using TaintSet = u16;

enum : TaintSet {
  kTaintToken = 1u << 0,       ///< PTStore secure-region token value.
  kTaintMacKey = 1u << 1,      ///< PTAuth MAC key (monitor secret).
  kTaintCredential = 1u << 2,  ///< PCB credential field contents.
  kTaintDomainRoot = 1u << 3,  ///< DPTI domain-registry root entry.
};

inline constexpr TaintSet kTaintSecretMask = 0x00FF;
inline constexpr TaintSet kTaintArgMask = 0xFF00;

/// Symbolic dependence on argument register a0+i (i in [0, 8)).
constexpr TaintSet taint_arg(unsigned i) {
  return static_cast<TaintSet>(1u << (8 + i));
}

/// Name of one secret-class bit ("token", "mac-key", ...).
const char* taint_class_name(TaintSet bit);

/// Human-readable set, e.g. "{token, arg0}"; "{}" when empty.
std::string describe_taint(TaintSet t);

/// Abstract machine state at one ptflow program point: the interval per
/// register (shared with ptlint), a taint set per register, and the two
/// must-flags the M rules consume.
struct FlowState {
  RegIntervals regs;
  std::array<TaintSet, 32> taint{};
  /// A call into the backend's mediation entry dominates this point (M1).
  bool mediated = false;
  /// A store provably confined to the credential home dominates this
  /// point (M2: credential written before the root becomes walkable).
  bool cred_written = false;
  bool reached = false;

  /// Entry state: every register Top/untainted. When `symbolic_args` is
  /// set, a0..a7 carry their taint_arg() bit — the summary-computation
  /// seeding; contexts built from real call sites leave it clear.
  static FlowState entry(bool symbolic_args);

  /// Join: interval hull + taint union per register, AND on must-flags.
  bool join_from(const FlowState& o);

  /// Apply one instruction's register effects (interval + taint).
  /// Loads/AMO results are left Top/untainted here — the verifier
  /// re-taints rd from the spec's secret ranges, which this layer cannot
  /// know. Terminator link writes are the caller's job.
  void step(u64 pc, const isa::Inst& in);
};

/// Taint of the value an instruction writes to rd, from its source
/// operands: ALU/shift/move results union their register sources,
/// constants (lui/auipc/li chains) are clean, loads are clean at this
/// layer (see FlowState::step).
TaintSet taint_after(const isa::Inst& in, const std::array<TaintSet, 32>& taint);

}  // namespace ptstore::analysis
