#include "analysis/sarif.h"

#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "telemetry/json.h"

namespace ptstore::analysis {

namespace {

constexpr unsigned kNumLintKinds = 7;
constexpr unsigned kNumFlowKinds = 7;

unsigned kind_index(DiagKind k) { return static_cast<unsigned>(k); }
unsigned kind_index(FlowDiagKind k) { return static_cast<unsigned>(k); }

const char* rule_description(DiagKind k) {
  switch (k) {
    case DiagKind::kRegularTouchesSecure:
      return "A regular load/store/AMO may touch the PTStore secure region "
             "(R1: only ld.pt/sd.pt may access it).";
    case DiagKind::kFetchFromSecure:
      return "Reachable code lies inside the secure region (R1: the region "
             "holds data, never text).";
    case DiagKind::kPtInsnEscapes:
      return "An ld.pt/sd.pt access is not provably confined to the secure "
             "region (R2).";
    case DiagKind::kSatpWriteUnvalidated:
      return "satp is written on a path without a dominating token "
             "validation call (R3).";
    case DiagKind::kPmpScopeViolation:
      return "Guest code writes a PMP configuration CSR (R4: PMP is owned "
             "by the security monitor).";
    case DiagKind::kJumpOutOfImage:
      return "A resolved control-flow target leaves the analysed image.";
    case DiagKind::kIllegalInstruction:
      return "A reachable word does not decode to a valid instruction.";
  }
  return "?";
}

const char* rule_description(FlowDiagKind k) {
  switch (k) {
    case FlowDiagKind::kSecretEscapes:
      return "A backend secret flows into memory outside the secure region "
             "and outside its sanctioned home (T1).";
    case FlowDiagKind::kSecretToUser:
      return "A backend secret flows into U-mode-readable memory (T2).";
    case FlowDiagKind::kSecretToSink:
      return "A backend secret reaches a trace/telemetry sink call (T3).";
    case FlowDiagKind::kUnmediatedPtStore:
      return "A store that may alias a page-table page is not dominated by "
             "the backend's mediation entry point (M1).";
    case FlowDiagKind::kCredAfterWalkable:
      return "A bind path makes the root walkable before committing the "
             "credential (M2).";
    case FlowDiagKind::kUnresolvedCall:
      return "An indirect call target is not statically resolvable; its "
             "effects were over-approximated.";
    case FlowDiagKind::kUnconstrainedStore:
      return "A store address is unconstrained (Top); PT-page aliasing is "
             "deferred to dynamic checking.";
  }
  return "?";
}

/// One exportable finding, uniform across the two report types.
struct SarifResult {
  const char* rule_id;
  unsigned rule_index;
  bool violation;
  const std::string* message;
  u64 pc;
  /// ptsym refinement for this violation, when the caller ran one.
  const symexec::SymVerdict* verdict = nullptr;
};

/// Pair verdicts (parallel to rep.violations() order) with their diags.
template <typename Report>
std::map<const void*, const symexec::SymVerdict*> verdict_map(
    const Report& rep, const std::vector<symexec::SymVerdict>* verdicts) {
  std::map<const void*, const symexec::SymVerdict*> m;
  if (verdicts == nullptr) return m;
  const auto viol = rep.violations();
  for (size_t i = 0; i < viol.size() && i < verdicts->size(); ++i)
    m[viol[i]] = &(*verdicts)[i];
  return m;
}

struct SarifRule {
  const char* id;
  const char* name;
  const char* description;
};

std::string render(const char* driver_name, const std::vector<SarifRule>& rules,
                   const std::vector<SarifResult>& results,
                   const std::string& artifact_uri) {
  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.begin_object()
      .kv("$schema", "https://json.schemastore.org/sarif-2.1.0.json")
      .kv("version", "2.1.0");
  w.key("runs").begin_array().begin_object();

  w.key("tool").begin_object().key("driver").begin_object();
  w.kv("name", driver_name).kv("version", "1.0.0");
  w.kv("informationUri", "docs/ANALYSIS.md");
  w.key("rules").begin_array();
  for (const SarifRule& r : rules) {
    w.begin_object().kv("id", r.id).kv("name", r.name);
    w.key("shortDescription")
        .begin_object()
        .kv("text", r.description)
        .end_object();
    w.end_object();
  }
  w.end_array();        // rules
  w.end_object();       // driver
  w.end_object();       // tool

  w.key("artifacts")
      .begin_array()
      .begin_object()
      .key("location")
      .begin_object()
      .kv("uri", artifact_uri)
      .end_object()
      .end_object()
      .end_array();

  // Dedup: one result per (ruleId, pc), keeping first-reported order.
  std::set<std::pair<const char*, u64>> seen;
  w.key("results").begin_array();
  for (const SarifResult& r : results) {
    if (!seen.insert({r.rule_id, r.pc}).second) continue;
    std::ostringstream pc;
    pc << "0x" << std::hex << r.pc;
    w.begin_object()
        .kv("ruleId", r.rule_id)
        .kv("ruleIndex", static_cast<u64>(r.rule_index))
        .kv("level", r.violation ? "error" : "note");
    w.key("message").begin_object().kv("text", *r.message).end_object();
    w.key("locations")
        .begin_array()
        .begin_object()
        .key("physicalLocation")
        .begin_object();
    w.key("artifactLocation").begin_object().kv("uri", artifact_uri).end_object();
    w.key("region").begin_object().kv("startLine", static_cast<u64>(1)).end_object();
    w.end_object();  // physicalLocation
    w.end_object().end_array();  // locations
    w.key("properties").begin_object().kv("pc", pc.str());
    if (r.verdict != nullptr) {
      w.kv("ptsymVerdict", symexec::verdict_name(r.verdict->verdict));
      w.kv("ptsymDetail", r.verdict->detail);
      w.kv("ptsymPaths", static_cast<u64>(r.verdict->paths_explored));
      w.kv("ptsymDepth", static_cast<u64>(r.verdict->depth_bound));
      if (r.verdict->witness)
        w.kv("ptsymWitnessSteps", r.verdict->witness->depth());
    }
    w.end_object();  // properties
    w.end_object();  // result
  }
  w.end_array();   // results
  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();  // document
  return os.str();
}

}  // namespace

const char* sarif_rule_id(DiagKind k) {
  static const char* kIds[kNumLintKinds] = {"PTL001", "PTL002", "PTL003",
                                            "PTL004", "PTL005", "PTL006",
                                            "PTL007"};
  const unsigned i = kind_index(k);
  return i < kNumLintKinds ? kIds[i] : "PTL000";
}

const char* sarif_rule_id(FlowDiagKind k) {
  static const char* kIds[kNumFlowKinds] = {"PTF101", "PTF102", "PTF103",
                                            "PTF104", "PTF105", "PTF106",
                                            "PTF107"};
  const unsigned i = kind_index(k);
  return i < kNumFlowKinds ? kIds[i] : "PTF100";
}

std::string to_sarif(const LintReport& rep, const std::string& artifact_uri,
                     const std::vector<symexec::SymVerdict>* verdicts) {
  std::vector<SarifRule> rules;
  for (unsigned i = 0; i < kNumLintKinds; ++i) {
    const auto k = static_cast<DiagKind>(i);
    rules.push_back({sarif_rule_id(k), diag_kind_name(k), rule_description(k)});
  }
  const auto vmap = verdict_map(rep, verdicts);
  std::vector<SarifResult> results;
  for (const Diag& d : rep.diags) {
    const auto it = vmap.find(&d);
    results.push_back({sarif_rule_id(d.kind), kind_index(d.kind),
                       d.sev == Severity::kViolation, &d.message, d.pc,
                       it == vmap.end() ? nullptr : it->second});
  }
  return render("ptlint", rules, results, artifact_uri);
}

std::string to_sarif(const FlowReport& rep, const std::string& artifact_uri,
                     const std::vector<symexec::SymVerdict>* verdicts) {
  std::vector<SarifRule> rules;
  for (unsigned i = 0; i < kNumFlowKinds; ++i) {
    const auto k = static_cast<FlowDiagKind>(i);
    rules.push_back(
        {sarif_rule_id(k), flow_diag_kind_name(k), rule_description(k)});
  }
  const auto vmap = verdict_map(rep, verdicts);
  std::vector<SarifResult> results;
  for (const FlowDiag& d : rep.diags) {
    const auto it = vmap.find(&d);
    results.push_back({sarif_rule_id(d.kind), kind_index(d.kind),
                       d.sev == Severity::kViolation, &d.message, d.pc,
                       it == vmap.end() ? nullptr : it->second});
  }
  return render("ptflow", rules, results, artifact_uri);
}

}  // namespace ptstore::analysis
