#include "analysis/sarif.h"

#include <sstream>

#include "telemetry/json.h"

namespace ptstore::analysis {

namespace {

constexpr unsigned kNumKinds = 7;

unsigned kind_index(DiagKind k) { return static_cast<unsigned>(k); }

const char* rule_description(DiagKind k) {
  switch (k) {
    case DiagKind::kRegularTouchesSecure:
      return "A regular load/store/AMO may touch the PTStore secure region "
             "(R1: only ld.pt/sd.pt may access it).";
    case DiagKind::kFetchFromSecure:
      return "Reachable code lies inside the secure region (R1: the region "
             "holds data, never text).";
    case DiagKind::kPtInsnEscapes:
      return "An ld.pt/sd.pt access is not provably confined to the secure "
             "region (R2).";
    case DiagKind::kSatpWriteUnvalidated:
      return "satp is written on a path without a dominating token "
             "validation call (R3).";
    case DiagKind::kPmpScopeViolation:
      return "Guest code writes a PMP configuration CSR (R4: PMP is owned "
             "by the security monitor).";
    case DiagKind::kJumpOutOfImage:
      return "A resolved control-flow target leaves the analysed image.";
    case DiagKind::kIllegalInstruction:
      return "A reachable word does not decode to a valid instruction.";
  }
  return "?";
}

}  // namespace

const char* sarif_rule_id(DiagKind k) {
  static const char* kIds[kNumKinds] = {"PTL001", "PTL002", "PTL003", "PTL004",
                                        "PTL005", "PTL006", "PTL007"};
  const unsigned i = kind_index(k);
  return i < kNumKinds ? kIds[i] : "PTL000";
}

std::string to_sarif(const LintReport& rep, const std::string& artifact_uri) {
  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.begin_object()
      .kv("$schema", "https://json.schemastore.org/sarif-2.1.0.json")
      .kv("version", "2.1.0");
  w.key("runs").begin_array().begin_object();

  w.key("tool").begin_object().key("driver").begin_object();
  w.kv("name", "ptlint").kv("version", "1.0.0");
  w.kv("informationUri", "docs/ANALYSIS.md");
  w.key("rules").begin_array();
  for (unsigned i = 0; i < kNumKinds; ++i) {
    const auto k = static_cast<DiagKind>(i);
    w.begin_object().kv("id", sarif_rule_id(k)).kv("name", diag_kind_name(k));
    w.key("shortDescription")
        .begin_object()
        .kv("text", rule_description(k))
        .end_object();
    w.end_object();
  }
  w.end_array();        // rules
  w.end_object();       // driver
  w.end_object();       // tool

  w.key("artifacts")
      .begin_array()
      .begin_object()
      .key("location")
      .begin_object()
      .kv("uri", artifact_uri)
      .end_object()
      .end_object()
      .end_array();

  w.key("results").begin_array();
  for (const Diag& d : rep.diags) {
    std::ostringstream pc;
    pc << "0x" << std::hex << d.pc;
    w.begin_object()
        .kv("ruleId", sarif_rule_id(d.kind))
        .kv("ruleIndex", static_cast<u64>(kind_index(d.kind)))
        .kv("level", d.sev == Severity::kViolation ? "error" : "note");
    w.key("message").begin_object().kv("text", d.message).end_object();
    w.key("locations")
        .begin_array()
        .begin_object()
        .key("physicalLocation")
        .begin_object();
    w.key("artifactLocation").begin_object().kv("uri", artifact_uri).end_object();
    w.key("region").begin_object().kv("startLine", static_cast<u64>(1)).end_object();
    w.end_object();  // physicalLocation
    w.end_object().end_array();  // locations
    w.key("properties").begin_object().kv("pc", pc.str()).end_object();
    w.end_object();  // result
  }
  w.end_array();   // results
  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();  // document
  return os.str();
}

}  // namespace ptstore::analysis
