// Offline secure-region well-formedness audit. Walks every live Sv39 page
// table of a booted kernel straight through physical memory (no cycles
// charged, no ld.pt path — this is the auditor's view, not the guest's) and
// checks the structural invariants PTStore is supposed to maintain:
//
//   A1  Every page-table page — roots and interior tables — lies physically
//       inside the secure region.
//   A2  No kernel-half mapping (root index < kUserRootIndex) is
//       user-accessible; user-accessible AND writable is called out
//       separately as the worst case.
//   A3  Token consistency: each live process's PCB token pointer lands in
//       the secure region and the token binds back to exactly that PCB's
//       token field and its architectural pgd (paper §III-C3).
#pragma once

#include <string>
#include <vector>

#include "kernel/kernel.h"

namespace ptstore::analysis {

struct AuditReport {
  std::vector<std::string> findings;
  u64 tables_checked = 0;  ///< Page-table pages visited (deduplicated).
  u64 ptes_checked = 0;
  u64 tokens_checked = 0;

  bool ok() const { return findings.empty(); }
  std::string format() const;
};

/// Audit all live address spaces (kernel root + every process). The
/// secure-region checks (A1, A3) apply only when the configuration runs
/// with PTStore enabled; A2 always applies.
AuditReport audit_secure_region(Kernel& kernel, PhysMem& mem);

}  // namespace ptstore::analysis
