#include "analysis/callgraph.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "analysis/absval.h"

namespace ptstore::analysis {
namespace {

using isa::Inst;
using isa::Op;

constexpr u8 kRegRa = 1;
constexpr int kWidenAfter = 4;

/// Global interval fixpoint (registers only) used to resolve indirect call
/// targets. A trimmed-down ptlint solver: same transfer, same widening,
/// caller-saved clobber across call-return edges — precision is only needed
/// for the li/auipc-materialised function-pointer idiom.
class TargetResolver {
 public:
  TargetResolver(const Image& img, const Cfg& cfg) : img_(img), cfg_(cfg) {}

  /// Interval of the jalr target (rs1 + imm) for every indirect exit, by pc.
  std::map<u64, AbsVal> solve(const std::set<u64>& roots) {
    std::deque<u64> work;
    for (const u64 r : roots) {
      if (cfg_.block_at(r) == nullptr) continue;
      if (join(r, entry_state())) work.push_back(r);
    }
    while (!work.empty()) {
      const u64 at = work.front();
      work.pop_front();
      const BasicBlock* bb = cfg_.block_at(at);
      if (bb == nullptr) continue;
      RegIntervals st = states_[at].first;
      for (u64 pc = bb->start; pc < bb->end; pc += 4) {
        const Inst in = img_.inst_at(pc);
        if (in.op == Op::kJalr) {
          const AbsVal t = AbsVal::add_imm(st[in.rs1], in.imm);
          auto it = targets_.find(pc);
          if (it == targets_.end()) {
            targets_.emplace(pc, t);
          } else {
            it->second = it->second.join(t);
          }
        }
        interval_step(pc, in, st);
        if (in.is_jump() && in.rd != 0) st[in.rd] = AbsVal::exact(pc + 4);
      }
      for (const Edge& e : bb->succs) {
        RegIntervals next = st;
        if (e.kind == EdgeKind::kCallReturn) clobber_caller_saved(next);
        if (join(e.to, next)) work.push_back(e.to);
      }
    }
    return targets_;
  }

 private:
  static RegIntervals entry_state() {
    RegIntervals st;
    for (AbsVal& v : st) v = AbsVal::top();
    st[0] = AbsVal::exact(0);
    return st;
  }

  static void clobber_caller_saved(RegIntervals& st) {
    static constexpr u8 kCallerSaved[] = {1,  5,  6,  7,  10, 11, 12, 13, 14,
                                          15, 16, 17, 28, 29, 30, 31};
    for (const u8 r : kCallerSaved) st[r] = AbsVal::top();
  }

  bool join(u64 at, const RegIntervals& st) {
    auto it = states_.find(at);
    if (it == states_.end()) {
      states_.emplace(at, std::make_pair(st, 0));
      return true;
    }
    RegIntervals& dst = it->second.first;
    bool changed = false;
    const bool widen = ++it->second.second > kWidenAfter;
    for (unsigned r = 1; r < 32; ++r) {
      const AbsVal j = dst[r].join(st[r]);
      if (j != dst[r]) {
        dst[r] = widen ? AbsVal::top() : j;
        changed = true;
      }
    }
    return changed;
  }

  const Image& img_;
  const Cfg& cfg_;
  std::map<u64, std::pair<RegIntervals, int>> states_;
  std::map<u64, AbsVal> targets_;
};

std::string function_name(const Image& img, u64 entry) {
  const Symbol* sym = img.symbol_at(entry);
  if (sym != nullptr) return sym->name;
  std::ostringstream os;
  os << "fn_0x" << std::hex << entry;
  return os.str();
}

}  // namespace

const CallSite* Function::call_at(u64 pc) const {
  for (const CallSite& cs : calls) {
    if (cs.pc == pc) return &cs;
  }
  return nullptr;
}

CallGraph CallGraph::build(const Image& img, const std::vector<u64>& extra_roots) {
  CallGraph cg;
  std::set<u64> entries;
  const auto add_entry = [&](u64 e) {
    return img.contains(e) && entries.insert(e).second;
  };
  add_entry(img.base);
  for (const u64 r : extra_roots) add_entry(r);
  if (entries.empty()) return cg;

  // Discovery loop: entries grow as direct targets and resolved indirect
  // targets surface; the CFG is rebuilt so new entries become leaders. The
  // entry set only grows and the image is finite, so this terminates; the
  // iteration cap is belt-and-braces for pathological images.
  for (int iter = 0; iter < 16; ++iter) {
    cg.fns_.clear();
    cg.by_entry_.clear();
    const std::vector<u64> roots(entries.begin(), entries.end());
    cg.cfg_ = Cfg::build(img, roots);

    bool grew = false;
    for (const BasicBlock& bb : cg.cfg_.blocks()) {
      for (const Edge& e : bb.succs) {
        if (e.kind == EdgeKind::kCall && add_entry(e.to)) grew = true;
      }
    }
    if (grew) continue;  // New direct-call entries: rebuild once more.

    const std::map<u64, AbsVal> jalr_targets =
        TargetResolver(img, cg.cfg_).solve(entries);

    // Partition blocks into functions and classify every call site.
    for (const u64 entry : entries) {
      if (cg.cfg_.block_at(entry) == nullptr) continue;
      Function fn;
      fn.entry = entry;
      fn.name = function_name(img, entry);
      std::set<u64> seen;
      std::deque<u64> work{entry};
      while (!work.empty()) {
        const u64 at = work.front();
        work.pop_front();
        if (!seen.insert(at).second) continue;
        const BasicBlock* bb = cg.cfg_.block_at(at);
        if (bb == nullptr) continue;
        fn.blocks.push_back(at);

        const u64 term_pc = bb->end - 4;
        const Inst term = img.inst_at(term_pc);
        const auto follow = [&](u64 to) { work.push_back(to); };

        if (term.op == Op::kJal && term.rd != 0) {
          // Direct call; the continuation (kCallReturn edge) stays ours.
          CallSite cs;
          cs.pc = term_pc;
          const u64 target = term_pc + static_cast<u64>(term.imm);
          if (img.contains(target)) {
            cs.targets.push_back(target);
            cs.resolved = true;
          } else {
            fn.has_unresolved_call = true;  // Callee outside the image.
          }
          fn.calls.push_back(std::move(cs));
          for (const Edge& e : bb->succs) {
            if (e.kind == EdgeKind::kCallReturn) follow(e.to);
          }
          continue;
        }
        if (term.op == Op::kJal) {  // rd == 0: goto or tail call.
          const u64 target = term_pc + static_cast<u64>(term.imm);
          if (img.contains(target) && entries.count(target) != 0 &&
              target != entry) {
            CallSite cs;
            cs.pc = term_pc;
            cs.targets.push_back(target);
            cs.resolved = true;
            cs.tail = true;
            fn.calls.push_back(std::move(cs));
          } else {
            for (const Edge& e : bb->succs) follow(e.to);
          }
          continue;
        }
        if (term.op == Op::kJalr) {
          auto it = jalr_targets.find(term_pc);
          const AbsVal tgt =
              it == jalr_targets.end() ? AbsVal::top() : it->second;
          const u64 exact = tgt.lo & ~u64{1};
          const bool is_ret = term.rd == 0 && term.rs1 == kRegRa;
          if (is_ret) continue;  // Conventional return: no successors.
          CallSite cs;
          cs.pc = term_pc;
          const bool tail = term.rd == 0;
          cs.tail = tail;
          if (tgt.is_exact() && img.contains(exact)) {
            cs.targets.push_back(exact);
            cs.resolved = true;
            if (entries.insert(exact).second) grew = true;
          } else {
            fn.has_unresolved_call = true;
          }
          fn.calls.push_back(std::move(cs));
          if (!tail) {
            for (const Edge& e : bb->succs) {
              if (e.kind == EdgeKind::kCallReturn) follow(e.to);
            }
          }
          continue;
        }
        for (const Edge& e : bb->succs) follow(e.to);
      }
      std::sort(fn.blocks.begin(), fn.blocks.end());
      cg.by_entry_[entry] = cg.fns_.size();
      cg.fns_.push_back(std::move(fn));
    }
    if (!grew) break;  // Entry set stable: the partition above is final.
  }

  cg.compute_sccs();
  return cg;
}

const Function* CallGraph::function_at(u64 entry) const {
  auto it = by_entry_.find(entry);
  return it == by_entry_.end() ? nullptr : &fns_[it->second];
}

const Function* CallGraph::function_containing(u64 pc) const {
  for (const Function& fn : fns_) {
    for (const u64 b : fn.blocks) {
      const BasicBlock* bb = cfg_.block_at(b);
      if (bb != nullptr && pc >= bb->start && pc < bb->end) return &fn;
    }
  }
  return nullptr;
}

size_t CallGraph::scc_id(u64 entry) const {
  auto it = scc_.find(entry);
  return it == scc_.end() ? static_cast<size_t>(-1) : it->second;
}

bool CallGraph::recursive(u64 entry) const {
  return recursive_.count(entry) != 0;
}

void CallGraph::compute_sccs() {
  // Iterative Tarjan over resolved call edges (incl. tail calls). SCCs pop
  // callees-first, which is exactly the bottom-up summary order.
  std::map<u64, size_t> index, low;
  std::vector<u64> stack;
  std::set<u64> on_stack;
  size_t next_index = 0, next_scc = 0;

  struct Frame {
    u64 entry;
    size_t edge = 0;
    std::vector<u64> succs;
  };

  for (const Function& root : fns_) {
    if (index.count(root.entry) != 0) continue;
    std::vector<Frame> frames;
    const auto push = [&](u64 e) {
      Frame f;
      f.entry = e;
      const Function* fn = function_at(e);
      if (fn != nullptr) {
        for (const CallSite& cs : fn->calls) {
          for (const u64 t : cs.targets) {
            if (by_entry_.count(t) != 0) f.succs.push_back(t);
          }
        }
      }
      index[e] = low[e] = next_index++;
      stack.push_back(e);
      on_stack.insert(e);
      frames.push_back(std::move(f));
    };
    push(root.entry);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < f.succs.size()) {
        const u64 t = f.succs[f.edge++];
        if (index.count(t) == 0) {
          push(t);
        } else if (on_stack.count(t) != 0) {
          low[f.entry] = std::min(low[f.entry], index[t]);
        }
      } else {
        const u64 e = f.entry;
        const bool is_root = low[e] == index[e];
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().entry] = std::min(low[frames.back().entry], low[e]);
        }
        if (is_root) {
          std::vector<u64> members;
          while (true) {
            const u64 m = stack.back();
            stack.pop_back();
            on_stack.erase(m);
            members.push_back(m);
            if (m == e) break;
          }
          const bool self_loop = [&] {
            if (members.size() > 1) return true;
            const Function* fn = function_at(e);
            if (fn == nullptr) return false;
            for (const CallSite& cs : fn->calls) {
              for (const u64 t : cs.targets) {
                if (t == e) return true;
              }
            }
            return false;
          }();
          for (const u64 m : members) {
            scc_[m] = next_scc;
            if (self_loop) recursive_.insert(m);
            bottom_up_.push_back(m);
          }
          ++next_scc;
        }
      }
    }
  }
}

}  // namespace ptstore::analysis
