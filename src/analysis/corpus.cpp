#include "analysis/corpus.h"

#include <functional>

#include "analysis/ptmc.h"
#include "isa/assembler.h"
#include "isa/csr.h"

namespace ptstore::analysis {
namespace {

using isa::Assembler;
using isa::Reg;

Image build(const std::function<void(Assembler&, std::vector<Symbol>&)>& body) {
  Assembler a(kCorpusBase);
  std::vector<Symbol> symbols{{"entry", kCorpusBase}};
  body(a, symbols);
  Image img;
  img.base = kCorpusBase;
  img.words = a.finish();
  img.symbols = std::move(symbols);
  return img;
}

// ---------------------------------------------------------------------------
// ptmc-derived entries: each defence-off mutation's shortest counterexample,
// re-assembled as straight-line guest code over a fixed address map so the
// *static* verifier flags the same attack step the model checker found.
//
// Model page i sits at sr_base + (i - 2) * 0x1000: with the initial
// boundary of 2, pages 2..3 land inside the secure region and pages 0..1
// just below it — the same geometry the abstract state starts from.

constexpr u64 kPtmcPageSize = 0x1000;

u64 ptmc_page_addr(u8 page, u64 sr_base) {
  return sr_base + (static_cast<i64>(page) - 2) * kPtmcPageSize;
}
u64 ptmc_token_slot(u8 slot, u64 sr_base) {
  return sr_base + 0x800 + slot * 16u;  // Token table: secure region, page 2.
}
u64 ptmc_pcb(u8 proc, u64 sr_base) {
  return sr_base - MiB(1) + proc * 0x100u;  // PCBs: normal kernel memory.
}
u64 ptmc_freelist(u64 sr_base) {
  return sr_base - MiB(1) + 0x800;  // Allocator free-list head: normal memory.
}

/// Emit the guest-code rendering of one counterexample step. Kernel ops use
/// li-materialised (provably in-region) pt-accesses and token-validated satp
/// writes exactly where the mutated config keeps the defence on; each
/// disabled defence surfaces as the ptlint rule that mirrors it.
void emit_ptmc_op(Assembler& a, const ptmc::Step& step,
                  const ptmc::State& prev, const ptmc::ModelConfig& cfg,
                  u64 sr_base, Assembler::Label validate, bool* needs_validate) {
  using ptmc::OpKind;
  const ptmc::Op& op = step.op;
  switch (op.kind) {
    case OpKind::kSpawn: {
      const u8 root = step.after.procs[op.a].ghost_root;
      a.li(Reg::kT0, ptmc_page_addr(root, sr_base));
      a.sd_pt(Reg::kZero, Reg::kT0, 0);  // Zero-fill the fresh root.
      a.li(Reg::kT1, ptmc_token_slot(op.a, sr_base));
      a.sd_pt(Reg::kT0, Reg::kT1, 0);  // Tokenise it.
      return;
    }
    case OpKind::kExitMm:
    case OpKind::kFreePt: {
      a.li(Reg::kT0, ptmc_token_slot(op.a, sr_base));
      a.sd_pt(Reg::kZero, Reg::kT0, 0);
      return;
    }
    case OpKind::kSwitchMm: {
      if (cfg.token_check) {
        *needs_validate = true;
        a.jal(Reg::kRa, validate);
      }
      a.li(Reg::kT1, ptmc_page_addr(step.after.procs[op.a].pgd, sr_base) >> 12);
      a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
      return;
    }
    case OpKind::kAllocPt: {
      if (prev.forced_alloc != ptmc::kNoPage &&
          step.after.forced_alloc == ptmc::kNoPage) {
        // The kernel pops the attacker-planted free-list entry and writes PT
        // data through it. The pointer came from memory, so it is statically
        // unconstrained — with the zero-check gone nothing re-validates it.
        a.li(Reg::kT0, ptmc_freelist(sr_base));
        a.ld(Reg::kT0, Reg::kT0, 0);
        a.sd_pt(Reg::kZero, Reg::kT0, 0);
      } else {
        a.li(Reg::kT0,
             ptmc_page_addr(step.after.procs[op.a].extra_pt, sr_base));
        a.sd_pt(Reg::kZero, Reg::kT0, 0);
      }
      return;
    }
    case OpKind::kGrow:
      a.nop();  // Monitor-side ecall; no guest instruction to lint.
      return;
    case OpKind::kUserAccess: {
      const u8 root = step.after.satp.root;
      a.li(Reg::kT0,
           ptmc_page_addr(root == ptmc::kNoPage ? u8{2} : root, sr_base));
      a.ld(Reg::kA0, Reg::kT0, 0);  // The PTW consumes a PTE from the root.
      return;
    }
    case OpKind::kAtkWritePage:
      a.li(Reg::kT0, ptmc_page_addr(op.a, sr_base));
      a.li(Reg::kT1, 0x41414141);
      a.sd(Reg::kT1, Reg::kT0, 0);
      return;
    case OpKind::kAtkRedirectPgd:
      a.li(Reg::kT0, ptmc_pcb(op.a, sr_base));
      a.li(Reg::kT1, ptmc_page_addr(op.b, sr_base));
      a.sd(Reg::kT1, Reg::kT0, 0);
      return;
    case OpKind::kAtkRedirectToken:
      a.li(Reg::kT0, ptmc_pcb(op.a, sr_base) + 8);
      a.li(Reg::kT1, op.b);
      a.sd(Reg::kT1, Reg::kT0, 0);
      return;
    case OpKind::kAtkForgeToken:
      a.li(Reg::kT0, ptmc_token_slot(op.a, sr_base));
      a.li(Reg::kT1, ptmc_page_addr(op.b, sr_base));
      a.sd(Reg::kT1, Reg::kT0, 0);
      return;
    case OpKind::kAtkCorruptAllocator:
      a.li(Reg::kT0, ptmc_freelist(sr_base));
      a.li(Reg::kT1, ptmc_page_addr(op.a, sr_base));
      a.sd(Reg::kT1, Reg::kT0, 0);
      return;
    case OpKind::kAtkSatpWrite:
      a.li(Reg::kT1, ptmc_page_addr(op.a, sr_base) >> 12);
      a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
      return;
  }
}

/// Which ptlint rule the mutation's attack step must trip once re-assembled.
DiagKind ptmc_expected_kind(u8 must_break) {
  switch (must_break) {
    case ptmc::kP1:
    case ptmc::kP2:
      return DiagKind::kSatpWriteUnvalidated;  // Unvalidated root install.
    case ptmc::kP3:
      return DiagKind::kRegularTouchesSecure;  // Token forged by regular store.
    case ptmc::kP4:
      return DiagKind::kPtInsnEscapes;  // PT data through an unchecked pointer.
    default:
      return DiagKind::kRegularTouchesSecure;
  }
}

void append_ptmc_entries(std::vector<CorpusEntry>& corpus, u64 sr_base) {
  for (const ptmc::MutationEntry& m : ptmc::mutation_matrix(ptmc::ModelConfig{})) {
    if (m.must_break == 0) continue;  // "ptw-alone" breaks nothing by design.
    ptmc::ModelConfig cfg = m.cfg;
    cfg.stop_after_violated = m.must_break;
    const ptmc::CheckResult res = ptmc::check(cfg);
    unsigned prop = 0;
    while (prop < ptmc::kNumProps && !(m.must_break & (1u << prop))) ++prop;
    const ptmc::Counterexample* ce = res.counterexample_for(prop);
    if (ce == nullptr) continue;  // Guarded by ptmc's own matrix tests.

    std::string desc = std::string(ptmc::prop_name(prop)) + " via '" +
                       m.name + "' mutation:";
    for (const ptmc::Step& s : ce->steps) desc += " " + describe(s.op) + ";";

    corpus.push_back(
        {std::string("ptmc_") + m.name, desc,
         build([&](Assembler& a, std::vector<Symbol>& symbols) {
           auto validate = a.make_label();
           bool needs_validate = false;
           ptmc::State prev = ptmc::State::initial();
           for (const ptmc::Step& s : ce->steps) {
             emit_ptmc_op(a, s, prev, ce->cfg, sr_base, validate,
                          &needs_validate);
             prev = s.after;
           }
           a.ebreak();
           if (needs_validate) {
             a.bind(validate);
             a.ret();
             symbols.push_back(
                 {"token_validate", *a.label_address(validate)});
           }
         }),
         false, ptmc_expected_kind(m.must_break)});
  }
}

}  // namespace

std::vector<CorpusEntry> violation_corpus(u64 sr_base, u64 sr_end) {
  (void)sr_end;
  std::vector<CorpusEntry> corpus;

  // 1. The classic PT-Injection write path: a plain sd aimed straight at a
  //    page table in the secure region (paper Fig. 2 attack 1).
  corpus.push_back({"raw_sd_secure",
                    "regular store with an exact secure-region target",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, sr_base);
                      a.sd(Reg::kZero, Reg::kT0, 0);
                      a.ebreak();
                    }),
                    false, DiagKind::kRegularTouchesSecure});

  // 2. A pt-access whose base escaped the region: sd.pt aimed at normal
  //    memory would let the privileged window write anywhere.
  corpus.push_back({"sdpt_escape",
                    "sd.pt whose base address lies below the secure region",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, sr_base - 0x1000);
                      a.sd_pt(Reg::kZero, Reg::kT0, 0);
                      a.ebreak();
                    }),
                    false, DiagKind::kPtInsnEscapes});

  // 3. Computed address: a masked, scaled index added to the region base —
  //    the whole derived interval [sr_base, sr_base+0x7F8] is secure.
  corpus.push_back({"computed_leak",
                    "store through a computed index landing in the region",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, sr_base);
                      a.andi(Reg::kT1, Reg::kA0, 0xFF);
                      a.slli(Reg::kT1, Reg::kT1, 3);
                      a.add(Reg::kT0, Reg::kT0, Reg::kT1);
                      a.sd(Reg::kZero, Reg::kT0, 0);
                      a.ebreak();
                    }),
                    false, DiagKind::kRegularTouchesSecure});

  // 4. PT-Reuse enabler: writing satp without first validating the token
  //    binding (paper §III-C3).
  corpus.push_back({"satp_unvalidated",
                    "satp write with no dominating token-validation call",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, 1);
                      a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT0);
                      a.ebreak();
                    }),
                    false, DiagKind::kSatpWriteUnvalidated});

  // 5. Mis-scoped PMP: S-mode code programming pmpaddr8 would move the
  //    secure-region boundary without the monitor (paper §IV-B).
  corpus.push_back({"pmp_mis_scope",
                    "guest code rewrites the monitor's TOR boundary entry",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, (sr_base - MiB(1)) >> 2);
                      a.csrrw(Reg::kZero, isa::csr::kPmpaddr0 + 8, Reg::kT0);
                      a.ebreak();
                    }),
                    false, DiagKind::kPmpScopeViolation});

  // 6. Benign near-miss: everything here skirts a rule without breaking it —
  //    a store 8 bytes below the region, an ld.pt properly inside it, and a
  //    satp write dominated by a token_validate call. Must stay clean.
  corpus.push_back({"benign_near_miss",
                    "boundary-adjacent but rule-abiding accesses",
                    build([&](Assembler& a, std::vector<Symbol>& symbols) {
                      auto validate = a.make_label();
                      a.li(Reg::kT0, sr_base);
                      a.sd(Reg::kZero, Reg::kT0, -8);
                      a.ld_pt(Reg::kT2, Reg::kT0, 0);
                      a.jal(Reg::kRa, validate);
                      a.li(Reg::kT1, 1);
                      a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
                      a.ebreak();
                      a.bind(validate);
                      a.ret();
                      symbols.push_back(
                          {"token_validate", *a.label_address(validate)});
                    }),
                    true, DiagKind{}});

  // 7-10. The ptmc mutation matrix, re-assembled: each defence-off
  // counterexample becomes a guest image whose attack step ptlint must flag.
  append_ptmc_entries(corpus, sr_base);

  return corpus;
}

const CorpusEntry* find_entry(const std::vector<CorpusEntry>& corpus,
                              const std::string& name) {
  for (const CorpusEntry& e : corpus) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace ptstore::analysis
