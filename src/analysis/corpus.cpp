#include "analysis/corpus.h"

#include <functional>

#include "isa/assembler.h"
#include "isa/csr.h"

namespace ptstore::analysis {
namespace {

using isa::Assembler;
using isa::Reg;

Image build(const std::function<void(Assembler&, std::vector<Symbol>&)>& body) {
  Assembler a(kCorpusBase);
  std::vector<Symbol> symbols{{"entry", kCorpusBase}};
  body(a, symbols);
  Image img;
  img.base = kCorpusBase;
  img.words = a.finish();
  img.symbols = std::move(symbols);
  return img;
}

}  // namespace

std::vector<CorpusEntry> violation_corpus(u64 sr_base, u64 sr_end) {
  (void)sr_end;
  std::vector<CorpusEntry> corpus;

  // 1. The classic PT-Injection write path: a plain sd aimed straight at a
  //    page table in the secure region (paper Fig. 2 attack 1).
  corpus.push_back({"raw_sd_secure",
                    "regular store with an exact secure-region target",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, sr_base);
                      a.sd(Reg::kZero, Reg::kT0, 0);
                      a.ebreak();
                    }),
                    false, DiagKind::kRegularTouchesSecure});

  // 2. A pt-access whose base escaped the region: sd.pt aimed at normal
  //    memory would let the privileged window write anywhere.
  corpus.push_back({"sdpt_escape",
                    "sd.pt whose base address lies below the secure region",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, sr_base - 0x1000);
                      a.sd_pt(Reg::kZero, Reg::kT0, 0);
                      a.ebreak();
                    }),
                    false, DiagKind::kPtInsnEscapes});

  // 3. Computed address: a masked, scaled index added to the region base —
  //    the whole derived interval [sr_base, sr_base+0x7F8] is secure.
  corpus.push_back({"computed_leak",
                    "store through a computed index landing in the region",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, sr_base);
                      a.andi(Reg::kT1, Reg::kA0, 0xFF);
                      a.slli(Reg::kT1, Reg::kT1, 3);
                      a.add(Reg::kT0, Reg::kT0, Reg::kT1);
                      a.sd(Reg::kZero, Reg::kT0, 0);
                      a.ebreak();
                    }),
                    false, DiagKind::kRegularTouchesSecure});

  // 4. PT-Reuse enabler: writing satp without first validating the token
  //    binding (paper §III-C3).
  corpus.push_back({"satp_unvalidated",
                    "satp write with no dominating token-validation call",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, 1);
                      a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT0);
                      a.ebreak();
                    }),
                    false, DiagKind::kSatpWriteUnvalidated});

  // 5. Mis-scoped PMP: S-mode code programming pmpaddr8 would move the
  //    secure-region boundary without the monitor (paper §IV-B).
  corpus.push_back({"pmp_mis_scope",
                    "guest code rewrites the monitor's TOR boundary entry",
                    build([&](Assembler& a, std::vector<Symbol>&) {
                      a.li(Reg::kT0, (sr_base - MiB(1)) >> 2);
                      a.csrrw(Reg::kZero, isa::csr::kPmpaddr0 + 8, Reg::kT0);
                      a.ebreak();
                    }),
                    false, DiagKind::kPmpScopeViolation});

  // 6. Benign near-miss: everything here skirts a rule without breaking it —
  //    a store 8 bytes below the region, an ld.pt properly inside it, and a
  //    satp write dominated by a token_validate call. Must stay clean.
  corpus.push_back({"benign_near_miss",
                    "boundary-adjacent but rule-abiding accesses",
                    build([&](Assembler& a, std::vector<Symbol>& symbols) {
                      auto validate = a.make_label();
                      a.li(Reg::kT0, sr_base);
                      a.sd(Reg::kZero, Reg::kT0, -8);
                      a.ld_pt(Reg::kT2, Reg::kT0, 0);
                      a.jal(Reg::kRa, validate);
                      a.li(Reg::kT1, 1);
                      a.csrrw(Reg::kZero, isa::csr::kSatp, Reg::kT1);
                      a.ebreak();
                      a.bind(validate);
                      a.ret();
                      symbols.push_back(
                          {"token_validate", *a.label_address(validate)});
                    }),
                    true, DiagKind{}});

  return corpus;
}

const CorpusEntry* find_entry(const std::vector<CorpusEntry>& corpus,
                              const std::string& name) {
  for (const CorpusEntry& e : corpus) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace ptstore::analysis
