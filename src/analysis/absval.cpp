#include "analysis/absval.h"

#include <sstream>

namespace ptstore::analysis {

std::string AbsVal::describe() const {
  std::ostringstream os;
  if (is_top()) {
    os << "[top]";
  } else if (is_exact()) {
    os << "0x" << std::hex << lo;
  } else {
    os << "[0x" << std::hex << lo << ", 0x" << hi << "]";
  }
  return os.str();
}

}  // namespace ptstore::analysis
