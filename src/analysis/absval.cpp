#include "analysis/absval.h"

#include <sstream>

#include "isa/inst.h"

namespace ptstore::analysis {

std::string AbsVal::describe() const {
  std::ostringstream os;
  if (is_top()) {
    os << "[top]";
  } else if (is_exact()) {
    os << "0x" << std::hex << lo;
  } else {
    os << "[0x" << std::hex << lo << ", 0x" << hi << "]";
  }
  return os.str();
}

void interval_step(u64 pc, const isa::Inst& in, RegIntervals& regs) {
  using isa::Op;
  const auto set = [&regs](u8 rd, AbsVal v) {
    if (rd != 0) regs[rd] = v;
  };
  const AbsVal a = regs[in.rs1];
  const AbsVal b = regs[in.rs2];
  switch (in.op) {
    case Op::kLui:
      set(in.rd, AbsVal::exact(static_cast<u64>(in.imm)));
      return;
    case Op::kAuipc:
      set(in.rd, AbsVal::exact(pc + static_cast<u64>(in.imm)));
      return;
    case Op::kAddi:
      set(in.rd, AbsVal::add_imm(a, in.imm));
      return;
    case Op::kAddiw:
      set(in.rd, AbsVal::sext_w(AbsVal::add_imm(a, in.imm)));
      return;
    case Op::kAndi:
      set(in.rd, AbsVal::and_imm(a, in.imm));
      return;
    case Op::kOri:
      set(in.rd, a.is_exact() ? AbsVal::exact(a.lo | static_cast<u64>(in.imm))
                              : AbsVal::top());
      return;
    case Op::kXori:
      set(in.rd, a.is_exact() ? AbsVal::exact(a.lo ^ static_cast<u64>(in.imm))
                              : AbsVal::top());
      return;
    case Op::kSlli:
      set(in.rd, AbsVal::shl(a, static_cast<unsigned>(in.imm)));
      return;
    case Op::kSrli:
      set(in.rd, AbsVal::shr(a, static_cast<unsigned>(in.imm)));
      return;
    case Op::kSrai:
      set(in.rd, a.is_exact()
                     ? AbsVal::exact(static_cast<u64>(static_cast<i64>(a.lo) >>
                                                      (in.imm & 63)))
                     : AbsVal::top());
      return;
    case Op::kAdd:
      set(in.rd, AbsVal::add(a, b));
      return;
    case Op::kSub:
      set(in.rd, AbsVal::sub(a, b));
      return;
    case Op::kAddw:
      set(in.rd, AbsVal::sext_w(AbsVal::add(a, b)));
      return;
    case Op::kSubw:
      set(in.rd, AbsVal::sext_w(AbsVal::sub(a, b)));
      return;
    case Op::kAnd:
      set(in.rd, b.is_exact()
                     ? AbsVal::and_imm(a, static_cast<i64>(b.lo))
                     : (a.is_exact() ? AbsVal::and_imm(b, static_cast<i64>(a.lo))
                                     : AbsVal::top()));
      return;
    case Op::kOr:
    case Op::kXor:
      set(in.rd, (a.is_exact() && b.is_exact())
                     ? AbsVal::exact(in.op == Op::kOr ? (a.lo | b.lo)
                                                      : (a.lo ^ b.lo))
                     : AbsVal::top());
      return;
    default:
      // Stores and branches write no register (rd is 0 in those formats);
      // everything else — loads (incl. ld.pt), AMOs, CSR reads, mul/div,
      // compares, word shifts — soundly degrades to Top.
      set(in.rd, AbsVal::top());
      return;
  }
}

}  // namespace ptstore::analysis
