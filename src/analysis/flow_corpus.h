// Seeded-violation corpus for ptflow, mirroring analysis/corpus.h: small
// attack-shaped guest images, one trio per defended backend (a secret leak,
// an unmediated PT-pool store, a credential-after-walkable bind), plus a
// benign image that exercises every rule's legal path and must stay clean.
//
// Alongside the violations, reference_kernel_image() renders each backend's
// kernel protocol paths (bind_root / switch_mm / mediated PT install) as
// guest assembly over the same geometry FlowSpec::for_backend assumes.
// These are the "shipped kernel" images CI proves T1–T3/M1–M2 clean.
#pragma once

#include <string>
#include <vector>

#include "analysis/ptflow.h"

namespace ptstore::analysis {

struct FlowCorpusEntry {
  std::string name;
  std::string description;
  BackendKind backend = BackendKind::kStock;
  Image image;
  bool expect_clean = false;   ///< The benign near-miss.
  FlowDiagKind expected{};     ///< Expected violation kind otherwise.
};

/// Build the ptflow corpus against a secure region [sr_base, sr_end).
/// Images load at kCorpusBase (shared with the ptlint corpus).
std::vector<FlowCorpusEntry> flow_violation_corpus(u64 sr_base, u64 sr_end);

/// Entry by name; nullptr when absent.
const FlowCorpusEntry* find_flow_entry(const std::vector<FlowCorpusEntry>& corpus,
                                       const std::string& name);

/// The reference kernel for one backend: bind_root (credential committed
/// before the root becomes walkable), switch_mm (validated satp install),
/// and a mediated PT write, composed from one entry function. Must verify
/// clean under flow_verify with FlowSpec::for_backend(k, sr_base, sr_end);
/// the PTStore rendering is additionally ptlint-clean (R1–R4).
Image reference_kernel_image(BackendKind k, u64 sr_base, u64 sr_end);

}  // namespace ptstore::analysis
