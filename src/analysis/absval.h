// Abstract value domain for ptlint's forward address analysis: an unsigned
// 64-bit interval [lo, hi] with Top = [0, 2^64-1]. The domain is tuned to
// the address-formation idioms the assembler emits — lui/auipc/addi/li
// constant chains stay exact, masked indices stay bounded, and everything
// else (loaded values, CSR reads) degrades soundly to Top.
//
// Wrapping rules: exact values wrap like hardware; a non-degenerate interval
// that would wrap around 2^64 (or lose bits in a shift) collapses to Top so
// the interval invariant lo <= hi always holds.
#pragma once

#include <array>
#include <string>

#include "common/types.h"

namespace ptstore::isa {
struct Inst;
}

namespace ptstore::analysis {

struct AbsVal {
  u64 lo = 0;
  u64 hi = ~u64{0};

  static AbsVal top() { return AbsVal{0, ~u64{0}}; }
  static AbsVal exact(u64 v) { return AbsVal{v, v}; }
  static AbsVal range(u64 lo, u64 hi) { return AbsVal{lo, hi}; }

  bool is_top() const { return lo == 0 && hi == ~u64{0}; }
  bool is_exact() const { return lo == hi; }

  bool operator==(const AbsVal& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const AbsVal& o) const { return !(*this == o); }

  /// Least upper bound.
  AbsVal join(const AbsVal& o) const {
    return AbsVal{lo < o.lo ? lo : o.lo, hi > o.hi ? hi : o.hi};
  }

  /// Interval relation to [base, end): fully inside, fully outside, or
  /// possibly overlapping.
  bool inside(u64 base, u64 end) const { return lo >= base && hi < end; }
  bool outside(u64 base, u64 end) const { return hi < base || lo >= end; }
  bool may_overlap(u64 base, u64 end) const { return !outside(base, end); }

  // ---- transfer helpers (all sound: imprecision only widens) ----

  /// x + y. Exact+exact wraps like hardware; intervals collapse to Top when
  /// the upper bound would wrap.
  static AbsVal add(const AbsVal& a, const AbsVal& b) {
    if (a.is_exact() && b.is_exact()) return exact(a.lo + b.lo);
    const u64 nlo = a.lo + b.lo;
    const u64 nhi = a.hi + b.hi;
    if (nhi < a.hi || nlo > nhi) return top();
    return AbsVal{nlo, nhi};
  }

  /// x + sext(imm), the `addi` / memory-offset shape. Shifting the whole
  /// interval by a (possibly negative) constant keeps its width; it stays an
  /// interval exactly when the two's-complement shift does not rotate order.
  static AbsVal add_imm(const AbsVal& a, i64 imm) {
    const u64 c = static_cast<u64>(imm);
    const u64 nlo = a.lo + c;
    const u64 nhi = a.hi + c;
    if (a.is_exact()) return exact(nlo);
    if (nlo > nhi) return top();
    return AbsVal{nlo, nhi};
  }

  /// x - y.
  static AbsVal sub(const AbsVal& a, const AbsVal& b) {
    if (a.is_exact() && b.is_exact()) return exact(a.lo - b.lo);
    if (a.lo >= b.hi) return AbsVal{a.lo - b.hi, a.hi - b.lo};
    return top();
  }

  /// x << n.
  static AbsVal shl(const AbsVal& a, unsigned n) {
    if (n >= 64) return exact(0);
    if (a.is_exact()) return exact(a.lo << n);
    if ((a.hi << n) >> n != a.hi) return top();
    return AbsVal{a.lo << n, a.hi << n};
  }

  /// x >> n (logical).
  static AbsVal shr(const AbsVal& a, unsigned n) {
    if (n >= 64) return exact(0);
    return AbsVal{a.lo >> n, a.hi >> n};
  }

  /// x & imm for non-negative masks: the result fits [0, imm].
  static AbsVal and_imm(const AbsVal& a, i64 imm) {
    if (a.is_exact()) return exact(a.lo & static_cast<u64>(imm));
    if (imm >= 0) return AbsVal{0, a.hi < static_cast<u64>(imm) ? a.hi : static_cast<u64>(imm)};
    return top();
  }

  /// 32-bit wrap + sign-extend (the addiw/*w family result shape).
  static AbsVal sext_w(const AbsVal& a) {
    if (a.is_exact()) {
      return exact(static_cast<u64>(static_cast<i64>(static_cast<i32>(a.lo))));
    }
    // A sub-[0, 2^31) interval is unchanged by the wrap; anything else Top.
    if (a.hi < (u64{1} << 31)) return a;
    return top();
  }

  std::string describe() const;
};

/// One interval per architectural register (x0 pinned to exact 0).
using RegIntervals = std::array<AbsVal, 32>;

/// Shared forward transfer for one instruction's register effect: constants
/// and address arithmetic stay precise, everything unmodelled (loads, CSR
/// reads, mul/div, compares) degrades soundly to Top. Terminator link
/// writes (jal/jalr rd) are the caller's job — it knows the edge kind.
/// Used by both the intra-procedural linter and the interprocedural ptflow
/// pass so the two analyses can never disagree on address formation.
void interval_step(u64 pc, const isa::Inst& in, RegIntervals& regs);

}  // namespace ptstore::analysis
