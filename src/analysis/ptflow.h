// ptflow: interprocedural taint & mediation-completeness verifier.
//
// ptlint proves the R1–R4 *layout* invariants one procedure at a time;
// ptflow proves the two properties the isolation backends' security
// argument actually rests on, across the whole image:
//
//   T1  No secret (token, MAC key, credential, domain root) flows into
//       memory outside the secure region — except into its own sanctioned
//       home (the credential field it is defined to live in).
//   T2  No secret flows into U-mode-readable memory.
//   T3  No secret reaches a trace/telemetry sink call.
//   M1  Every store whose target interval may alias a page-table page is
//       dominated by a call into the backend's mediation entry point (or
//       is an sd.pt, where the pt-insns are the mediation mechanism).
//   M2  On every bind_root/rebind_root path, the credential is written
//       before the root becomes walkable (the satp write).
//
// Machinery: call-graph construction (analysis/callgraph.h), bottom-up
// function summaries over the taint lattice (analysis/taint.h) computed
// against symbolic arguments with an SCC worklist fixpoint, then a
// top-down context-join pass that re-analyzes each function once in the
// join of its calling contexts and reports violations. Which rules apply,
// which values are secret, and which symbols mediate comes from the
// per-backend declarative sheet in kernel/isolation.h (FlowAnnotation);
// FlowSpec adds the concrete address geometry.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/ptlint.h"
#include "analysis/taint.h"
#include "kernel/isolation.h"

namespace ptstore::analysis {

/// One taint source or sanctioned secret home: [base, end) carries `cls`.
struct SecretRange {
  u64 base = 0;
  u64 end = 0;
  TaintSet cls = 0;
  const char* what = "";
};

/// Per-backend rule selection + address geometry for one analyzed image.
struct FlowSpec {
  BackendKind backend = BackendKind::kStock;

  u64 sr_base = 0, sr_end = 0;      ///< Secure/protected region (T1 allows).
  u64 pt_base = 0, pt_end = 0;      ///< PT-page pool (M1 alias range).
  u64 cred_base = 0, cred_end = 0;  ///< Credential home (M2 target).
  u64 user_base = 0, user_end = 0;  ///< U-mode-readable window (T2).

  std::vector<SecretRange> secrets;
  std::vector<std::string> mediation_symbols;
  std::vector<std::string> bind_symbols;
  std::vector<std::string> sink_symbols;

  bool t1 = false, t2 = false, t3 = false, m1 = false, m2 = false;
  bool pt_insn_mediates = false;

  std::vector<u64> extra_roots;

  /// Resolve the kernel-declared FlowAnnotation for `k` against the default
  /// image geometry used by the corpus and the reference kernels: secrets
  /// and the credential home at fixed offsets from the secure region, the
  /// U-mode window at kUserSpaceBase.
  static FlowSpec for_backend(BackendKind k, u64 sr_base, u64 sr_end);

  /// Taint classes of a load from `addr` (union over overlapping sources).
  TaintSet secret_taint(const AbsVal& addr) const;
  /// True when `addr` is provably confined to a sanctioned secret home
  /// (the credential range or any declared source range).
  bool sanctioned_dest(const AbsVal& addr) const;
};

enum class FlowDiagKind : u8 {
  kSecretEscapes,      ///< T1: secret stored outside the secure region.
  kSecretToUser,       ///< T2: secret stored to a U-mode-readable page.
  kSecretToSink,       ///< T3: secret passed to a trace/telemetry sink.
  kUnmediatedPtStore,  ///< M1: PT-page store without mediation.
  kCredAfterWalkable,  ///< M2: satp written before the credential.
  kUnresolvedCall,     ///< Note: indirect call degraded to havoc.
  kUnconstrainedStore, ///< Note: ⊤-addressed store (dynamic coverage).
};

const char* flow_diag_kind_name(FlowDiagKind k);

struct FlowDiag {
  FlowDiagKind kind = FlowDiagKind::kSecretEscapes;
  Severity sev = Severity::kViolation;
  u64 pc = 0;
  std::string message;
  std::vector<std::string> context;  ///< Disassembly neighbourhood.
};

struct FlowReport {
  std::vector<FlowDiag> diags;
  size_t function_count = 0;
  size_t callsite_count = 0;
  size_t unresolved_calls = 0;

  size_t violation_count() const;
  bool clean() const { return violation_count() == 0; }
  std::vector<const FlowDiag*> violations() const;
  std::string format() const;
};

/// Run the interprocedural verifier over one image.
FlowReport flow_verify(const Image& img, const FlowSpec& spec);

}  // namespace ptstore::analysis
