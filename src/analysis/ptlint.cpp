#include "analysis/ptlint.h"

#include <array>
#include <deque>
#include <sstream>

#include "isa/csr.h"

namespace ptstore::analysis {
namespace {

using isa::Inst;
using isa::Op;

/// Abstract machine state at one program point: one interval per register
/// plus the R3 must-flag ("a token-validation call dominates this point").
struct RegState {
  std::array<AbsVal, 32> regs;
  bool validated = false;
  bool reached = false;

  static RegState entry() {
    RegState st;
    st.reached = true;
    for (AbsVal& v : st.regs) v = AbsVal::top();
    st.regs[0] = AbsVal::exact(0);
    return st;
  }

  /// Join: interval lub per register, AND on the must-flag.
  bool join_from(const RegState& o) {
    if (!o.reached) return false;
    if (!reached) {
      *this = o;
      return true;
    }
    bool changed = false;
    for (unsigned r = 1; r < 32; ++r) {
      const AbsVal j = regs[r].join(o.regs[r]);
      if (j != regs[r]) {
        regs[r] = j;
        changed = true;
      }
    }
    if (validated && !o.validated) {
      validated = false;
      changed = true;
    }
    return changed;
  }
};

/// Joins tolerated at one block entry before changing registers are widened
/// straight to Top (guarantees fixpoint termination on loops).
constexpr int kWidenAfter = 4;

bool writes_csr(const Inst& in) {
  switch (in.op) {
    case Op::kCsrrw:
    case Op::kCsrrwi:
      return true;
    case Op::kCsrrs:
    case Op::kCsrrc:
    case Op::kCsrrsi:  // rs1 field holds the uimm for the immediate forms.
    case Op::kCsrrci:
      return in.rs1 != 0;
    default:
      return false;
  }
}

bool is_pmp_csr(u32 csr) {
  return (csr >= isa::csr::kPmpcfg0 && csr <= isa::csr::kPmpcfg0 + 3) ||
         (csr >= isa::csr::kPmpaddr0 && csr <= isa::csr::kPmpaddr0 + 15);
}

/// Transfer function for one non-terminator effect (terminator link writes
/// are applied by the caller, which knows the edge kind). The interval part
/// is the shared analysis/absval.h transfer, so ptlint and ptflow agree.
void step(u64 pc, const Inst& in, RegState& st) { interval_step(pc, in, st.regs); }

struct AccessInfo {
  bool is_access = false;
  AbsVal addr;
  bool pt = false;
  bool store = false;
};

AccessInfo classify_access(const Inst& in, const RegState& st) {
  AccessInfo info;
  if (!(in.is_load() || in.is_store() || in.is_amo() || in.is_pt_access()))
    return info;
  info.is_access = true;
  info.pt = in.is_pt_access();
  info.store = in.is_store() || in.is_amo() || in.op == Op::kSdPt;
  info.addr = in.is_amo() ? st.regs[in.rs1]
                          : AbsVal::add_imm(st.regs[in.rs1], in.imm);
  return info;
}

AccessClass classify(const AbsVal& addr, const LintConfig& cfg) {
  if (addr.inside(cfg.sr_base, cfg.sr_end)) return AccessClass::kSecure;
  if (addr.outside(cfg.sr_base, cfg.sr_end)) return AccessClass::kNonSecure;
  return AccessClass::kUnknown;
}

class Linter {
 public:
  Linter(const Image& img, const LintConfig& cfg) : img_(img), cfg_(cfg) {}

  LintReport run() {
    std::vector<u64> roots = cfg_.extra_roots;
    cfg_graph_ = Cfg::build(img_, roots);
    report_.reachable = cfg_graph_.reachable_pcs();
    solve();
    for (const BasicBlock& bb : cfg_graph_.blocks()) report_block(bb);
    return std::move(report_);
  }

 private:
  /// Interpret a block from its fixpoint entry state. `visit` sees the
  /// state *before* each instruction executes. Returns the state after the
  /// last instruction's register effects (terminator link write included).
  template <typename Visit>
  RegState interpret(const BasicBlock& bb, RegState st, Visit&& visit) {
    for (u64 pc = bb.start; pc < bb.end; pc += 4) {
      const Inst in = img_.inst_at(pc);
      visit(pc, in, st);
      step(pc, in, st);
      if (in.is_jump() && in.rd != 0) {
        st.regs[in.rd] = AbsVal::exact(pc + 4);
      }
    }
    return st;
  }

  /// Post-call continuation state: caller-saved registers are clobbered
  /// (any callee may write them); callee-saved and sp/gp/tp survive per the
  /// ABI the assembler-built images follow.
  static RegState call_return_state(const RegState& at_call, bool validates) {
    RegState st = at_call;
    static constexpr u8 kCallerSaved[] = {1,  5,  6,  7,  10, 11, 12, 13, 14,
                                          15, 16, 17, 28, 29, 30, 31};
    for (const u8 r : kCallerSaved) st.regs[r] = AbsVal::top();
    if (validates) st.validated = true;
    return st;
  }

  bool call_target_validates(u64 target) const {
    const Symbol* sym = img_.symbol_at(target);
    if (sym == nullptr) return false;
    for (const std::string& name : cfg_.token_validate_symbols) {
      if (sym->name == name) return true;
    }
    return false;
  }

  void solve() {
    std::deque<u64> work;
    const auto seed = [&](u64 pc) {
      if (cfg_graph_.block_at(pc) != nullptr &&
          entry_[pc].join_from(RegState::entry())) {
        work.push_back(pc);
      }
    };
    seed(img_.base);
    for (const u64 r : cfg_.extra_roots) seed(r);

    while (!work.empty()) {
      const u64 at = work.front();
      work.pop_front();
      const BasicBlock* bb = cfg_graph_.block_at(at);
      if (bb == nullptr) continue;
      const RegState out =
          interpret(*bb, entry_[at], [](u64, const Inst&, RegState&) {});
      for (const Edge& e : bb->succs) {
        RegState next = out;
        if (e.kind == EdgeKind::kCallReturn) {
          // For a direct call the callee address is the paired kCall edge's
          // target; an indirect call (no kCall edge) validates nothing.
          u64 callee = 0;
          bool direct = false;
          for (const Edge& c : bb->succs) {
            if (c.kind == EdgeKind::kCall) {
              callee = c.to;
              direct = true;
            }
          }
          next = call_return_state(out, direct && call_target_validates(callee));
        }
        propagate(e.to, next, work);
      }
    }
  }

  void propagate(u64 to, const RegState& st, std::deque<u64>& work) {
    RegState& dst = entry_[to];
    const RegState before = dst;
    if (!dst.join_from(st)) return;
    if (++join_count_[to] > kWidenAfter && before.reached) {
      for (unsigned r = 1; r < 32; ++r) {
        if (dst.regs[r] != before.regs[r]) dst.regs[r] = AbsVal::top();
      }
    }
    work.push_back(to);
  }

  void report_block(const BasicBlock& bb) {
    auto it = entry_.find(bb.start);
    if (it == entry_.end() || !it->second.reached) return;

    if (bb.start < cfg_.sr_end && bb.end > cfg_.sr_base) {
      diag(DiagKind::kFetchFromSecure, Severity::kViolation,
           bb.start < cfg_.sr_base ? cfg_.sr_base : bb.start,
           "reachable code lies inside the secure region");
    }

    interpret(bb, it->second, [&](u64 pc, const Inst& in, RegState& st) {
      check_inst(pc, in, st);
    });

    // Resolved control targets that leave the image: a note in general, a
    // violation when the target would fetch from the secure region.
    if (bb.leaves_image) {
      const u64 last = bb.end - 4;
      const Inst in = img_.inst_at(last);
      for (const Edge& e : terminator_edges(in, last)) {
        if (img_.contains(e.to)) continue;
        if (e.to >= cfg_.sr_base && e.to < cfg_.sr_end) {
          diag(DiagKind::kFetchFromSecure, Severity::kViolation, last,
               "control transfer targets the secure region");
        } else if (e.kind != EdgeKind::kCallReturn) {
          diag(DiagKind::kJumpOutOfImage, Severity::kNote, last,
               "control transfer leaves the analyzed image");
        }
      }
    }
  }

  void check_inst(u64 pc, const Inst& in, const RegState& st) {
    if (in.op == Op::kIllegal) {
      diag(DiagKind::kIllegalInstruction, Severity::kNote, pc,
           "reachable word does not decode");
      return;
    }
    const AccessInfo acc = classify_access(in, st);
    if (acc.is_access) {
      const AccessClass cls = classify(acc.addr, cfg_);
      report_.access_class[pc] = cls;
      const std::string what =
          std::string(acc.store ? "store" : "load") + " address " +
          acc.addr.describe();
      if (acc.pt) {
        if (cls != AccessClass::kSecure) {
          diag(DiagKind::kPtInsnEscapes, Severity::kViolation, pc,
               "pt-access " + what + " is not provably inside the secure region");
        }
      } else if (cls == AccessClass::kSecure) {
        diag(DiagKind::kRegularTouchesSecure, Severity::kViolation, pc,
             "regular " + what + " targets the secure region");
      } else if (cls == AccessClass::kUnknown) {
        if (acc.addr.is_top()) {
          // Documented imprecision: an unconstrained address may point
          // anywhere. The dynamic cross-check covers these sites.
          diag(DiagKind::kRegularTouchesSecure, Severity::kNote, pc,
               "regular " + what + " is unconstrained (checked dynamically)");
        } else {
          diag(DiagKind::kRegularTouchesSecure, Severity::kViolation, pc,
               "regular " + what + " may overlap the secure region");
        }
      }
    }
    if (writes_csr(in)) {
      const u32 csr = static_cast<u32>(in.imm) & 0xFFF;
      if (csr == isa::csr::kSatp && !st.validated) {
        diag(DiagKind::kSatpWriteUnvalidated, Severity::kViolation, pc,
             "satp write is not dominated by a token-validation call");
      }
      if (is_pmp_csr(csr)) {
        diag(DiagKind::kPmpScopeViolation, Severity::kViolation, pc,
             "guest code writes a PMP CSR owned by the M-mode monitor");
      }
    }
  }

  void diag(DiagKind kind, Severity sev, u64 pc, std::string message) {
    Diag d;
    d.kind = kind;
    d.sev = sev;
    d.pc = pc;
    d.message = img_.locate(pc) + ": " + std::move(message);
    const u64 lo = (pc >= img_.base + 8) ? pc - 8 : img_.base;
    const u64 hi = (pc + 12 <= img_.end()) ? pc + 12 : img_.end();
    for (u64 p = lo; p < hi; p += 4) {
      if (!img_.contains(p)) continue;
      std::ostringstream os;
      os << (p == pc ? " => " : "    ") << "0x" << std::hex << p << "  "
         << isa::disassemble(img_.inst_at(p));
      d.context.push_back(os.str());
    }
    report_.diags.push_back(std::move(d));
  }

  const Image& img_;
  const LintConfig& cfg_;
  Cfg cfg_graph_;
  std::map<u64, RegState> entry_;
  std::map<u64, int> join_count_;
  LintReport report_;
};

}  // namespace

const char* access_class_name(AccessClass c) {
  switch (c) {
    case AccessClass::kNonSecure: return "non-secure";
    case AccessClass::kSecure: return "secure";
    case AccessClass::kUnknown: return "unknown";
  }
  return "?";
}

const char* diag_kind_name(DiagKind k) {
  switch (k) {
    case DiagKind::kRegularTouchesSecure: return "regular-touches-secure";
    case DiagKind::kFetchFromSecure: return "fetch-from-secure";
    case DiagKind::kPtInsnEscapes: return "pt-insn-escapes";
    case DiagKind::kSatpWriteUnvalidated: return "satp-write-unvalidated";
    case DiagKind::kPmpScopeViolation: return "pmp-scope-violation";
    case DiagKind::kJumpOutOfImage: return "jump-out-of-image";
    case DiagKind::kIllegalInstruction: return "illegal-instruction";
  }
  return "?";
}

size_t LintReport::violation_count() const {
  size_t n = 0;
  for (const Diag& d : diags) n += d.sev == Severity::kViolation ? 1 : 0;
  return n;
}

std::vector<const Diag*> LintReport::violations() const {
  std::vector<const Diag*> out;
  for (const Diag& d : diags) {
    if (d.sev == Severity::kViolation) out.push_back(&d);
  }
  return out;
}

std::string LintReport::format() const {
  std::ostringstream os;
  for (const Diag& d : diags) {
    os << (d.sev == Severity::kViolation ? "violation" : "note") << " ["
       << diag_kind_name(d.kind) << "] at 0x" << std::hex << d.pc << std::dec
       << ": " << d.message << "\n";
    for (const std::string& line : d.context) os << line << "\n";
  }
  os << diags.size() << " diagnostic(s), " << violation_count()
     << " violation(s)\n";
  return os.str();
}

LintReport lint_image(const Image& img, const LintConfig& cfg) {
  return Linter(img, cfg).run();
}

}  // namespace ptstore::analysis
