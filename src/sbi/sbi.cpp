#include "sbi/sbi.h"

#include "common/log.h"

namespace ptstore {

namespace {
constexpr u8 kCfgTor = static_cast<u8>(PmpMatch::kTor) << pmpcfg::kAShift;
}

void SbiMonitor::boot_init() {
  // One wide-open TOR entry covering everything below DRAM end. S/U code can
  // run; no secure region yet (satp.S is off until the kernel enables it).
  // Entry 8 so guard entries 0..3 keep priority when added later. PMP banks
  // are per-hart; the firmware programs every registered hart identically.
  const PhysAddr dram_end = core_.mem().dram_end();
  const u64 cfg = u64{pmpcfg::kR | pmpcfg::kW | pmpcfg::kX | kCfgTor};
  for (Core* hart : harts_) {
    hart->write_csr(isa::csr::kPmpaddr0 + kTorNormal, dram_end >> 2,
                    Privilege::kMachine);
    hart->write_csr(isa::csr::kPmpcfg2, cfg, Privilege::kMachine);
  }
}

void SbiMonitor::program_pmp() {
  // pmp8: [0, base) RWX; pmp9: [base, end) RW+S (TOR chains off pmpaddr8).
  const u64 cfg8 = u64{pmpcfg::kR | pmpcfg::kW | pmpcfg::kX | kCfgTor};
  const u64 cfg9 = u64{pmpcfg::kR | pmpcfg::kW | pmpcfg::kS | kCfgTor};
  for (Core* hart : harts_) {
    hart->write_csr(isa::csr::kPmpaddr0 + kTorNormal, region_.base >> 2,
                    Privilege::kMachine);
    hart->write_csr(isa::csr::kPmpaddr0 + kTorSecure, region_.end >> 2,
                    Privilege::kMachine);
    hart->write_csr(isa::csr::kPmpcfg2, cfg8 | (cfg9 << 8),
                    Privilege::kMachine);
  }
}

SbiStatus SbiMonitor::send_ipi(Core& initiator, unsigned target_hart) {
  initiator.add_cycles(kSbiCallCost);
  if (target_hart >= harts_.size()) return SbiStatus::kInvalidParam;
  harts_[target_hart]->set_ssip(true);
  return SbiStatus::kOk;
}

void SbiMonitor::clear_ipi(unsigned target_hart) {
  if (target_hart < harts_.size()) harts_[target_hart]->set_ssip(false);
}

SbiStatus SbiMonitor::guard_region(PhysAddr base, u64 size) {
  core_.add_cycles(kSbiCallCost);
  if (guards_ >= kMaxGuards) return SbiStatus::kDenied;
  if (size < 8 || !is_pow2(size) || !is_aligned(base, size)) {
    return SbiStatus::kInvalidParam;
  }
  const unsigned idx = kGuardBase + guards_;
  const u64 napot = (base >> 2) | ((size / 8) - 1);
  const u64 byte = u64{pmpcfg::kR | pmpcfg::kW | pmpcfg::kS |
                       (static_cast<u8>(PmpMatch::kNapot) << pmpcfg::kAShift)};
  for (Core* hart : harts_) {
    hart->write_csr(isa::csr::kPmpaddr0 + idx, napot, Privilege::kMachine);
    // Read-modify-write the guard's cfg byte inside pmpcfg0.
    const u64 cur = *hart->read_csr(isa::csr::kPmpcfg0, Privilege::kMachine);
    hart->write_csr(isa::csr::kPmpcfg0, insert_bits(cur, 8 * idx, 8, byte),
                    Privilege::kMachine);
  }
  ++guards_;
  LOG_INFO("sbi", "guard region #%u: [0x%llx, 0x%llx)", guards_,
           static_cast<unsigned long long>(base),
           static_cast<unsigned long long>(base + size));
  return SbiStatus::kOk;
}

SbiStatus SbiMonitor::sr_init(PhysAddr base, u64 size) {
  core_.add_cycles(kSbiCallCost);
  if (initialized_) return SbiStatus::kAlreadyAvailable;
  if (size == 0 || !is_aligned(base, kPageSize) || !is_aligned(size, kPageSize)) {
    return SbiStatus::kInvalidParam;
  }
  const PhysAddr end = base + size;
  if (end != core_.mem().dram_end() || base < core_.mem().dram_base()) {
    return SbiStatus::kInvalidParam;
  }
  region_ = SecureRegion{base, end};
  initialized_ = true;
  program_pmp();
  LOG_INFO("sbi", "secure region initialized: [0x%llx, 0x%llx)",
           static_cast<unsigned long long>(base), static_cast<unsigned long long>(end));
  return SbiStatus::kOk;
}

SbiStatus SbiMonitor::sr_set_boundary(PhysAddr new_base) {
  core_.add_cycles(kSbiCallCost);
  if (!initialized_) return SbiStatus::kDenied;
  if (!is_aligned(new_base, kPageSize) || new_base < core_.mem().dram_base() ||
      new_base >= region_.end) {
    return SbiStatus::kInvalidParam;
  }
  region_.base = new_base;
  program_pmp();
  return SbiStatus::kOk;
}

}  // namespace ptstore
