// M-mode monitor with PTStore's SBI extension (paper §IV-B).
//
// In the RISC-V privilege model only M-mode may program the pmpcfg/pmpaddr
// CSRs, so PTStore adds SBI functions letting the S-mode kernel initialize,
// query, and move the secure-region boundary. This monitor models that
// firmware: it owns the PMP layout policy and performs the CSR writes on the
// core in M-mode, charging the cost of the ecall round-trip.
//
// PMP layout maintained by the monitor:
//   pmp0..3 (NAPOT): guard regions (§V-F generality; initially OFF)
//   pmp8 (TOR):  [0, sr_base)          RWX      — normal memory + MMIO
//   pmp9 (TOR):  [sr_base, dram_end)   RW + S   — the PTStore secure region
// Guards sit at the lowest indices so they take PMP priority over the
// catch-all TOR pair. Growing the secure region moves sr_base downward by
// rewriting pmpaddr8.
#pragma once

#include <vector>

#include "cpu/core.h"

namespace ptstore {

enum class SbiStatus : i64 {
  kOk = 0,
  kInvalidParam = -3,
  kDenied = -4,
  kAlreadyAvailable = -6,
};

struct SecureRegion {
  PhysAddr base = 0;
  PhysAddr end = 0;
  u64 size() const { return end - base; }
  bool contains(PhysAddr pa, u64 len = 1) const {
    return pa >= base && pa + len <= end && pa + len >= pa;
  }
};

class SbiMonitor {
 public:
  explicit SbiMonitor(Core& core) : core_(core) { harts_.push_back(&core); }

  /// Register a secondary hart. The monitor mirrors every PMP programming
  /// operation (boot_init / sr_* / guard_region) to all registered harts —
  /// PMP is per-hart state but the secure-region layout is global policy, so
  /// firmware keeps the banks coherent (the SMP analog of §IV-B). Must be
  /// called before boot_init so the initial layout reaches every hart.
  void add_hart(Core& core) { harts_.push_back(&core); }
  unsigned nharts() const { return static_cast<unsigned>(harts_.size()); }
  Core& hart(unsigned h) const { return *harts_[h]; }

  /// SBI send_ipi: post a supervisor software interrupt to `target_hart`
  /// (CLINT MSIP -> SSIP delivery). Charges the ecall round trip on the
  /// initiating hart. The target's handler acks by clearing SSIP.
  SbiStatus send_ipi(Core& initiator, unsigned target_hart);
  void clear_ipi(unsigned target_hart);

  /// Firmware boot: open PMP for the whole address space (entry 0 TOR up to
  /// DRAM end, RWX) so the S-mode kernel can run before the secure region
  /// exists. Runs "before the attacker" per the threat model.
  void boot_init();

  /// SBI sr_init(base, size): create the secure region [base, base+size).
  /// Must be page-aligned, inside DRAM, ending at DRAM end (the region grows
  /// downward from the top of memory). Fails if already initialized.
  SbiStatus sr_init(PhysAddr base, u64 size);

  /// SBI sr_set_boundary(new_base): move the lower boundary. Growing
  /// (new_base < base) is always legal; shrinking requires the kernel to
  /// have vacated the pages (the monitor cannot verify that — policy is the
  /// kernel's, as in the paper).
  SbiStatus sr_set_boundary(PhysAddr new_base);

  /// SBI sr_get(): current boundary.
  SecureRegion sr_get() const { return region_; }

  /// §V-F generality: mark an additional NAPOT region (e.g. a watchdog's
  /// MMIO window or a block of critical bare-metal data) as secure. `size`
  /// must be a power of two ≥ 8 and `base` aligned to it. Up to four
  /// guards (PMP entries 0–3). Guards are independent of sr_init.
  SbiStatus guard_region(PhysAddr base, u64 size);
  unsigned guard_count() const { return guards_; }

  bool initialized() const { return initialized_; }

  /// Monitor-internal state for full-system checkpoints. The PMP entries the
  /// monitor programmed live in CoreArchState; this captures the mirror the
  /// firmware keeps of them.
  struct State {
    SecureRegion region;
    bool initialized = false;
    unsigned guards = 0;
  };
  State save_state() const { return State{region_, initialized_, guards_}; }
  /// Restore the firmware mirror only — the caller restores the PMP CSRs
  /// themselves via Core::restore_arch_state. Charges no cycles.
  void restore_state(const State& st) {
    region_ = st.region;
    initialized_ = st.initialized;
    guards_ = st.guards;
  }

  /// Cycle cost of one SBI ecall round trip (trap to M, handler, mret) —
  /// charged on every sr_* call.
  static constexpr Cycles kSbiCallCost = 400;

 private:
  void program_pmp();

  Core& core_;
  std::vector<Core*> harts_;
  SecureRegion region_{};
  bool initialized_ = false;
  unsigned guards_ = 0;

  /// PMP entry indices of the monitor's layout.
  static constexpr unsigned kGuardBase = 0;   // 0..3: NAPOT guards.
  static constexpr unsigned kMaxGuards = 4;
  static constexpr unsigned kTorNormal = 8;   // [0, sr_base) RWX.
  static constexpr unsigned kTorSecure = 9;   // [sr_base, dram_end) RW+S.
};

}  // namespace ptstore
