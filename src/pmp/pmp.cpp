#include "pmp/pmp.h"

#include <sstream>

#include "common/bits.h"

namespace ptstore {

void PmpUnit::set_cfg(unsigned idx, u8 cfg) {
  ++write_gen_;
  if (idx >= kPmpEntryCount) return;
  if (cfg_[idx] & pmpcfg::kL) return;  // Locked entries ignore writes.
  cfg_[idx] = cfg;
}

void PmpUnit::set_addr(unsigned idx, u64 pmpaddr) {
  ++write_gen_;
  if (idx >= kPmpEntryCount) return;
  if (cfg_[idx] & pmpcfg::kL) return;
  // A locked TOR entry also locks the address register below it.
  if (idx + 1 < kPmpEntryCount && (cfg_[idx + 1] & pmpcfg::kL) &&
      match_mode(idx + 1) == PmpMatch::kTor) {
    return;
  }
  addr_[idx] = pmpaddr & mask_lo(54);  // bits [55:2]
}

std::optional<std::pair<PhysAddr, PhysAddr>> PmpUnit::entry_range(unsigned idx) const {
  if (idx >= kPmpEntryCount) return std::nullopt;
  switch (match_mode(idx)) {
    case PmpMatch::kOff:
      return std::nullopt;
    case PmpMatch::kTor: {
      const PhysAddr lo = idx == 0 ? 0 : (addr_[idx - 1] << 2);
      const PhysAddr hi = addr_[idx] << 2;
      if (hi <= lo) return std::nullopt;
      return std::make_pair(lo, hi);
    }
    case PmpMatch::kNa4: {
      const PhysAddr lo = addr_[idx] << 2;
      return std::make_pair(lo, lo + 4);
    }
    case PmpMatch::kNapot: {
      // pmpaddr = (base >> 2) | ((size/8) - 1); trailing ones give the size.
      const u64 a = addr_[idx];
      const unsigned ones = static_cast<unsigned>(std::countr_one(a));
      const u64 size = u64{1} << (ones + 3);
      const PhysAddr lo = (a & ~mask_lo(ones)) << 2;
      return std::make_pair(lo, lo + size);
    }
  }
  return std::nullopt;
}

bool PmpUnit::any_active() const {
  for (unsigned i = 0; i < kPmpEntryCount; ++i) {
    if (match_mode(i) != PmpMatch::kOff) return true;
  }
  return false;
}

bool PmpUnit::is_secure(PhysAddr pa, u64 size) const {
  for (unsigned i = 0; i < kPmpEntryCount; ++i) {
    if (!(cfg_[i] & pmpcfg::kS)) continue;
    const auto r = entry_range(i);
    if (r && range_contains(r->first, r->second - r->first, pa, size)) return true;
  }
  return false;
}

PmpDecision PmpUnit::check(PhysAddr pa, u64 size, AccessType type, AccessKind kind,
                           Privilege priv) const {
  // Find the highest-priority (lowest-index) entry that matches any byte.
  for (unsigned i = 0; i < kPmpEntryCount; ++i) {
    const auto r = entry_range(i);
    if (!r) continue;
    const u64 rsize = r->second - r->first;
    if (!ranges_overlap(r->first, rsize, pa, size)) continue;
    if (!range_contains(r->first, rsize, pa, size)) {
      // Straddling the matching entry fails regardless of permissions.
      return {false, PmpDenyReason::kPartialMatch, static_cast<int>(i)};
    }

    const u8 c = cfg_[i];
    const bool secure = (c & pmpcfg::kS) != 0;
    const bool locked = (c & pmpcfg::kL) != 0;

    // PTStore secure-region semantics first: they override the base R/W/X
    // rules and apply to S/U modes (M-mode is the trusted monitor; its
    // regular accesses honour the L bit as in the base spec).
    if (secure_enforcement_ && (priv != Privilege::kMachine || locked)) {
      if (secure && kind == AccessKind::kRegular) {
        return {false, PmpDenyReason::kSecureRegular, static_cast<int>(i)};
      }
      if (!secure && kind == AccessKind::kPtInsn) {
        return {false, PmpDenyReason::kPtInsnOutsideSecure, static_cast<int>(i)};
      }
    }

    // Base PMP permission check. M-mode skips it unless the entry is locked.
    if (priv == Privilege::kMachine && !locked) {
      return {true, PmpDenyReason::kNone, static_cast<int>(i)};
    }
    const bool ok = (type == AccessType::kRead && (c & pmpcfg::kR)) ||
                    (type == AccessType::kWrite && (c & pmpcfg::kW)) ||
                    (type == AccessType::kExecute && (c & pmpcfg::kX));
    if (!ok) return {false, PmpDenyReason::kPermission, static_cast<int>(i)};
    return {true, PmpDenyReason::kNone, static_cast<int>(i)};
  }

  // No entry matched.
  if (priv == Privilege::kMachine) return {true, PmpDenyReason::kNone, -1};
  if (!any_active()) return {true, PmpDenyReason::kNone, -1};
  // ld.pt/sd.pt may only touch the secure region, which is by definition
  // covered by an S=1 entry; missing everything is a fault for them too.
  if (secure_enforcement_ && kind == AccessKind::kPtInsn) {
    return {false, PmpDenyReason::kPtInsnOutsideSecure, -1};
  }
  return {false, PmpDenyReason::kNoMatch, -1};
}

std::string PmpUnit::describe() const {
  std::ostringstream os;
  for (unsigned i = 0; i < kPmpEntryCount; ++i) {
    const auto r = entry_range(i);
    if (!r) continue;
    const u8 c = cfg_[i];
    os << "pmp" << i << ": [0x" << std::hex << r->first << ", 0x" << r->second
       << ") " << ((c & pmpcfg::kR) ? "R" : "-") << ((c & pmpcfg::kW) ? "W" : "-")
       << ((c & pmpcfg::kX) ? "X" : "-") << ((c & pmpcfg::kS) ? "S" : "-")
       << ((c & pmpcfg::kL) ? "L" : "-") << std::dec << "\n";
  }
  return os.str();
}

}  // namespace ptstore
