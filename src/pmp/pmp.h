// RISC-V Physical Memory Protection unit with PTStore's secure-region
// extension.
//
// Standard PMP (priv. spec v1.11): 16 entries, each a cfg byte
// {R,W,X,A[1:0],L} plus a pmpaddr register. PTStore adds a new S ("secure")
// bit at cfg bit 5 (reserved in the base spec). Semantics added by PTStore:
//
//   * An access matching an S=1 entry is allowed only when issued by the
//     ld.pt/sd.pt instructions (AccessKind::kPtInsn) or by the page-table
//     walker (AccessKind::kPtw). Regular instructions take an access fault.
//   * ld.pt/sd.pt accesses that do NOT land in an S=1 entry take an access
//     fault: the new instructions may access *only* the secure region.
//   * The PTW-side "must fetch PTEs from the secure region" rule is gated by
//     satp.S and enforced by the MMU using is_secure() below.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "common/types.h"

namespace ptstore {

inline constexpr unsigned kPmpEntryCount = 16;

/// pmpcfg bit positions.
namespace pmpcfg {
inline constexpr u8 kR = 1u << 0;
inline constexpr u8 kW = 1u << 1;
inline constexpr u8 kX = 1u << 2;
inline constexpr u8 kAShift = 3;  // A field: bits [4:3]
inline constexpr u8 kAMask = 0b11u << kAShift;
inline constexpr u8 kS = 1u << 5;  // PTStore secure bit (reserved in base spec)
inline constexpr u8 kL = 1u << 7;
}  // namespace pmpcfg

/// PMP address-matching modes (A field).
enum class PmpMatch : u8 {
  kOff = 0,
  kTor = 1,
  kNa4 = 2,
  kNapot = 3,
};

/// Why a PMP check failed (for diagnostics and tests).
enum class PmpDenyReason : u8 {
  kNone = 0,
  kNoMatch,             ///< S/U access matched no active entry.
  kPermission,          ///< Matched entry lacks R/W/X permission.
  kSecureRegular,       ///< Regular instruction touched an S=1 region (paper ②).
  kPtInsnOutsideSecure, ///< ld.pt/sd.pt touched a non-secure region.
  kPartialMatch,        ///< Access straddles an entry boundary.
};

struct PmpDecision {
  bool allowed = false;
  PmpDenyReason reason = PmpDenyReason::kNone;
  int entry = -1;  ///< Matching entry index, -1 if none.
};

class PmpUnit {
 public:
  PmpUnit() = default;

  /// CSR-style accessors. `idx` is the entry number (0..15). Locked entries
  /// ignore writes (as in hardware).
  void set_cfg(unsigned idx, u8 cfg);
  u8 cfg(unsigned idx) const { return cfg_.at(idx); }
  /// pmpaddr registers hold address bits [55:2] (i.e. addr >> 2).
  void set_addr(unsigned idx, u64 pmpaddr);
  u64 addr(unsigned idx) const { return addr_.at(idx); }

  /// Full check of an access [pa, pa+size) issued at privilege `priv` by
  /// agent `kind` with intent `type`.
  PmpDecision check(PhysAddr pa, u64 size, AccessType type, AccessKind kind,
                    Privilege priv) const;

  /// True if the whole range lies inside some active S=1 entry. Used by the
  /// MMU for the satp.S page-table-walker check.
  bool is_secure(PhysAddr pa, u64 size) const;

  /// Defence-mutation hook (analysis/ptmc): with enforcement off, the S bit
  /// loses its access-kind semantics — S=1 entries behave as plain R/W/X
  /// regions for every instruction and ld.pt/sd.pt are no longer confined
  /// to them. is_secure() (the walker-side view used by the satp.S check)
  /// is deliberately unaffected, so the two defences stay independently
  /// toggleable. Counts as a configuration write for write_gen().
  void set_secure_enforcement(bool on) {
    ++write_gen_;
    secure_enforcement_ = on;
  }
  bool secure_enforcement() const { return secure_enforcement_; }

  /// Range [base, end) of entry idx per its match mode; nullopt if OFF.
  std::optional<std::pair<PhysAddr, PhysAddr>> entry_range(unsigned idx) const;

  /// True if any entry is active (A != OFF). When false, S/U accesses are
  /// allowed (nothing is configured yet — pre-boot state).
  bool any_active() const;

  /// Bumped on every pmpcfg/pmpaddr write attempt (even ones a locked entry
  /// ignores). check() is pure, so a cached decision stays valid while this
  /// counter is unchanged — the decode cache relies on that.
  u64 write_gen() const { return write_gen_; }

  std::string describe() const;

 private:
  PmpMatch match_mode(unsigned idx) const {
    return static_cast<PmpMatch>((cfg_[idx] & pmpcfg::kAMask) >> pmpcfg::kAShift);
  }

  std::array<u8, kPmpEntryCount> cfg_{};
  std::array<u64, kPmpEntryCount> addr_{};
  u64 write_gen_ = 0;
  bool secure_enforcement_ = true;
};

}  // namespace ptstore
