file(REMOVE_RECURSE
  "CMakeFiles/guest_cli.dir/guest_cli.cpp.o"
  "CMakeFiles/guest_cli.dir/guest_cli.cpp.o.d"
  "guest_cli"
  "guest_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
