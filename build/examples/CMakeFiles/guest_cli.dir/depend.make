# Empty dependencies file for guest_cli.
# This may be replaced when dependencies are built.
