# Empty compiler generated dependencies file for hello_guest.
# This may be replaced when dependencies are built.
