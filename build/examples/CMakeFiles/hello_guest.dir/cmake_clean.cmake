file(REMOVE_RECURSE
  "CMakeFiles/hello_guest.dir/hello_guest.cpp.o"
  "CMakeFiles/hello_guest.dir/hello_guest.cpp.o.d"
  "hello_guest"
  "hello_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hello_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
