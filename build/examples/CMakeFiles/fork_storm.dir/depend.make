# Empty dependencies file for fork_storm.
# This may be replaced when dependencies are built.
