# Empty dependencies file for bare_metal_guard.
# This may be replaced when dependencies are built.
