file(REMOVE_RECURSE
  "CMakeFiles/bare_metal_guard.dir/bare_metal_guard.cpp.o"
  "CMakeFiles/bare_metal_guard.dir/bare_metal_guard.cpp.o.d"
  "bare_metal_guard"
  "bare_metal_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bare_metal_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
