file(REMOVE_RECURSE
  "CMakeFiles/mem_lat.dir/mem_lat.cpp.o"
  "CMakeFiles/mem_lat.dir/mem_lat.cpp.o.d"
  "mem_lat"
  "mem_lat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
