# Empty dependencies file for mem_lat.
# This may be replaced when dependencies are built.
