# Empty dependencies file for multitask.
# This may be replaced when dependencies are built.
