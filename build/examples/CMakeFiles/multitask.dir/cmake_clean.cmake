file(REMOVE_RECURSE
  "CMakeFiles/multitask.dir/multitask.cpp.o"
  "CMakeFiles/multitask.dir/multitask.cpp.o.d"
  "multitask"
  "multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
