# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem "/root/repo/build/tests/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cache "/root/repo/build/tests/test_cache")
set_tests_properties(test_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_isa "/root/repo/build/tests/test_isa")
set_tests_properties(test_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;25;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pmp "/root/repo/build/tests/test_pmp")
set_tests_properties(test_pmp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;33;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mmu "/root/repo/build/tests/test_mmu")
set_tests_properties(test_mmu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;37;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cpu "/root/repo/build/tests/test_cpu")
set_tests_properties(test_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;41;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_kernel "/root/repo/build/tests/test_kernel")
set_tests_properties(test_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;55;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_attacks "/root/repo/build/tests/test_attacks")
set_tests_properties(test_attacks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;70;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;73;ptstore_test;/root/repo/tests/CMakeLists.txt;0;")
