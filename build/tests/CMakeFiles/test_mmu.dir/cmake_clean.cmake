file(REMOVE_RECURSE
  "CMakeFiles/test_mmu.dir/mmu/secure_walk_test.cpp.o"
  "CMakeFiles/test_mmu.dir/mmu/secure_walk_test.cpp.o.d"
  "CMakeFiles/test_mmu.dir/mmu/walker_test.cpp.o"
  "CMakeFiles/test_mmu.dir/mmu/walker_test.cpp.o.d"
  "test_mmu"
  "test_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
