file(REMOVE_RECURSE
  "CMakeFiles/test_kernel.dir/kernel/buddy_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/buddy_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/console_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/console_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/kernel_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/kernel_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/kmem_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/kmem_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/page_alloc_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/page_alloc_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/pagetable_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/pagetable_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/process_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/process_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/pt_property_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/pt_property_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/sbi_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/sbi_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/slab_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/slab_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/system_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/system_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/token_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/token_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/vma_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/vma_test.cpp.o.d"
  "test_kernel"
  "test_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
