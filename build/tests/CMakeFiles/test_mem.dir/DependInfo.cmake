
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/phys_mem_test.cpp" "tests/CMakeFiles/test_mem.dir/mem/phys_mem_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/phys_mem_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ptstore_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/ptstore_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/ptstore_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ptstore_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sbi/CMakeFiles/ptstore_sbi.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ptstore_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ptstore_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ptstore_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ptstore_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pmp/CMakeFiles/ptstore_pmp.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ptstore_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ptstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
