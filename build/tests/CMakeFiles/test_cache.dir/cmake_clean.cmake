file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/cache/cache_test.cpp.o"
  "CMakeFiles/test_cache.dir/cache/cache_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/cache/l2_test.cpp.o"
  "CMakeFiles/test_cache.dir/cache/l2_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/cache/tlb_test.cpp.o"
  "CMakeFiles/test_cache.dir/cache/tlb_test.cpp.o.d"
  "test_cache"
  "test_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
