file(REMOVE_RECURSE
  "CMakeFiles/test_cpu.dir/cpu/alu_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/alu_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/bpred_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/bpred_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/diff_fuzz_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/diff_fuzz_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/interrupt_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/interrupt_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/mem_insn_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/mem_insn_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/mmio_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/mmio_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/priv_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/priv_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/ptstore_insn_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/ptstore_insn_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/snapshot_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/snapshot_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/timing_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/timing_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/tracer_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/tracer_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/word_ops_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/word_ops_test.cpp.o.d"
  "test_cpu"
  "test_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
