# Empty compiler generated dependencies file for test_pmp.
# This may be replaced when dependencies are built.
