file(REMOVE_RECURSE
  "CMakeFiles/test_pmp.dir/pmp/pmp_secure_test.cpp.o"
  "CMakeFiles/test_pmp.dir/pmp/pmp_secure_test.cpp.o.d"
  "CMakeFiles/test_pmp.dir/pmp/pmp_test.cpp.o"
  "CMakeFiles/test_pmp.dir/pmp/pmp_test.cpp.o.d"
  "test_pmp"
  "test_pmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
