file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/guest_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/guest_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/hwcost_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/hwcost_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/regression_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/regression_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/related_work_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/related_work_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/stress_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/stress_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/workloads_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/workloads_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
