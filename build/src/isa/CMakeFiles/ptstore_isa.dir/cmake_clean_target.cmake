file(REMOVE_RECURSE
  "libptstore_isa.a"
)
