
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/assembler.cpp" "src/isa/CMakeFiles/ptstore_isa.dir/assembler.cpp.o" "gcc" "src/isa/CMakeFiles/ptstore_isa.dir/assembler.cpp.o.d"
  "/root/repo/src/isa/decode.cpp" "src/isa/CMakeFiles/ptstore_isa.dir/decode.cpp.o" "gcc" "src/isa/CMakeFiles/ptstore_isa.dir/decode.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/isa/CMakeFiles/ptstore_isa.dir/disasm.cpp.o" "gcc" "src/isa/CMakeFiles/ptstore_isa.dir/disasm.cpp.o.d"
  "/root/repo/src/isa/rvc.cpp" "src/isa/CMakeFiles/ptstore_isa.dir/rvc.cpp.o" "gcc" "src/isa/CMakeFiles/ptstore_isa.dir/rvc.cpp.o.d"
  "/root/repo/src/isa/text_asm.cpp" "src/isa/CMakeFiles/ptstore_isa.dir/text_asm.cpp.o" "gcc" "src/isa/CMakeFiles/ptstore_isa.dir/text_asm.cpp.o.d"
  "/root/repo/src/isa/trap.cpp" "src/isa/CMakeFiles/ptstore_isa.dir/trap.cpp.o" "gcc" "src/isa/CMakeFiles/ptstore_isa.dir/trap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
