# Empty compiler generated dependencies file for ptstore_isa.
# This may be replaced when dependencies are built.
