file(REMOVE_RECURSE
  "CMakeFiles/ptstore_isa.dir/assembler.cpp.o"
  "CMakeFiles/ptstore_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/ptstore_isa.dir/decode.cpp.o"
  "CMakeFiles/ptstore_isa.dir/decode.cpp.o.d"
  "CMakeFiles/ptstore_isa.dir/disasm.cpp.o"
  "CMakeFiles/ptstore_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/ptstore_isa.dir/rvc.cpp.o"
  "CMakeFiles/ptstore_isa.dir/rvc.cpp.o.d"
  "CMakeFiles/ptstore_isa.dir/text_asm.cpp.o"
  "CMakeFiles/ptstore_isa.dir/text_asm.cpp.o.d"
  "CMakeFiles/ptstore_isa.dir/trap.cpp.o"
  "CMakeFiles/ptstore_isa.dir/trap.cpp.o.d"
  "libptstore_isa.a"
  "libptstore_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
