# Empty dependencies file for ptstore_mmu.
# This may be replaced when dependencies are built.
