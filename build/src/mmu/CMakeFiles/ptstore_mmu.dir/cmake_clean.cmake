file(REMOVE_RECURSE
  "CMakeFiles/ptstore_mmu.dir/mmu.cpp.o"
  "CMakeFiles/ptstore_mmu.dir/mmu.cpp.o.d"
  "libptstore_mmu.a"
  "libptstore_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
