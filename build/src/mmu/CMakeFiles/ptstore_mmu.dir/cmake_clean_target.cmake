file(REMOVE_RECURSE
  "libptstore_mmu.a"
)
