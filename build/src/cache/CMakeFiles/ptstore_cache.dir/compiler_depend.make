# Empty compiler generated dependencies file for ptstore_cache.
# This may be replaced when dependencies are built.
