file(REMOVE_RECURSE
  "libptstore_cache.a"
)
