file(REMOVE_RECURSE
  "CMakeFiles/ptstore_cache.dir/cache.cpp.o"
  "CMakeFiles/ptstore_cache.dir/cache.cpp.o.d"
  "CMakeFiles/ptstore_cache.dir/tlb.cpp.o"
  "CMakeFiles/ptstore_cache.dir/tlb.cpp.o.d"
  "libptstore_cache.a"
  "libptstore_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
