
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cpp" "src/cpu/CMakeFiles/ptstore_cpu.dir/core.cpp.o" "gcc" "src/cpu/CMakeFiles/ptstore_cpu.dir/core.cpp.o.d"
  "/root/repo/src/cpu/exec.cpp" "src/cpu/CMakeFiles/ptstore_cpu.dir/exec.cpp.o" "gcc" "src/cpu/CMakeFiles/ptstore_cpu.dir/exec.cpp.o.d"
  "/root/repo/src/cpu/tracer.cpp" "src/cpu/CMakeFiles/ptstore_cpu.dir/tracer.cpp.o" "gcc" "src/cpu/CMakeFiles/ptstore_cpu.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptstore_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ptstore_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ptstore_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pmp/CMakeFiles/ptstore_pmp.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ptstore_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ptstore_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
