# Empty dependencies file for ptstore_cpu.
# This may be replaced when dependencies are built.
