file(REMOVE_RECURSE
  "libptstore_cpu.a"
)
