file(REMOVE_RECURSE
  "CMakeFiles/ptstore_cpu.dir/core.cpp.o"
  "CMakeFiles/ptstore_cpu.dir/core.cpp.o.d"
  "CMakeFiles/ptstore_cpu.dir/exec.cpp.o"
  "CMakeFiles/ptstore_cpu.dir/exec.cpp.o.d"
  "CMakeFiles/ptstore_cpu.dir/tracer.cpp.o"
  "CMakeFiles/ptstore_cpu.dir/tracer.cpp.o.d"
  "libptstore_cpu.a"
  "libptstore_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
