# Empty compiler generated dependencies file for ptstore_workloads.
# This may be replaced when dependencies are built.
