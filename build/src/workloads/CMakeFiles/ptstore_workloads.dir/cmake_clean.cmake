file(REMOVE_RECURSE
  "CMakeFiles/ptstore_workloads.dir/lmbench.cpp.o"
  "CMakeFiles/ptstore_workloads.dir/lmbench.cpp.o.d"
  "CMakeFiles/ptstore_workloads.dir/netserver.cpp.o"
  "CMakeFiles/ptstore_workloads.dir/netserver.cpp.o.d"
  "CMakeFiles/ptstore_workloads.dir/runner.cpp.o"
  "CMakeFiles/ptstore_workloads.dir/runner.cpp.o.d"
  "CMakeFiles/ptstore_workloads.dir/spec.cpp.o"
  "CMakeFiles/ptstore_workloads.dir/spec.cpp.o.d"
  "libptstore_workloads.a"
  "libptstore_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
