file(REMOVE_RECURSE
  "libptstore_workloads.a"
)
