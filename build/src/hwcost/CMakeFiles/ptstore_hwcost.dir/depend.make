# Empty dependencies file for ptstore_hwcost.
# This may be replaced when dependencies are built.
