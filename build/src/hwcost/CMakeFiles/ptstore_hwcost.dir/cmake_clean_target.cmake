file(REMOVE_RECURSE
  "libptstore_hwcost.a"
)
