file(REMOVE_RECURSE
  "CMakeFiles/ptstore_hwcost.dir/resource_model.cpp.o"
  "CMakeFiles/ptstore_hwcost.dir/resource_model.cpp.o.d"
  "libptstore_hwcost.a"
  "libptstore_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
