file(REMOVE_RECURSE
  "CMakeFiles/ptstore_attacks.dir/scenarios.cpp.o"
  "CMakeFiles/ptstore_attacks.dir/scenarios.cpp.o.d"
  "libptstore_attacks.a"
  "libptstore_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
