file(REMOVE_RECURSE
  "libptstore_attacks.a"
)
