# Empty dependencies file for ptstore_attacks.
# This may be replaced when dependencies are built.
