file(REMOVE_RECURSE
  "libptstore_common.a"
)
