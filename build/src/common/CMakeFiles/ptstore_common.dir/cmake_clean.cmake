file(REMOVE_RECURSE
  "CMakeFiles/ptstore_common.dir/histogram.cpp.o"
  "CMakeFiles/ptstore_common.dir/histogram.cpp.o.d"
  "CMakeFiles/ptstore_common.dir/log.cpp.o"
  "CMakeFiles/ptstore_common.dir/log.cpp.o.d"
  "CMakeFiles/ptstore_common.dir/stats.cpp.o"
  "CMakeFiles/ptstore_common.dir/stats.cpp.o.d"
  "CMakeFiles/ptstore_common.dir/types.cpp.o"
  "CMakeFiles/ptstore_common.dir/types.cpp.o.d"
  "libptstore_common.a"
  "libptstore_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
