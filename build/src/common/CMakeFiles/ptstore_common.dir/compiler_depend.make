# Empty compiler generated dependencies file for ptstore_common.
# This may be replaced when dependencies are built.
