file(REMOVE_RECURSE
  "libptstore_sbi.a"
)
