# Empty compiler generated dependencies file for ptstore_sbi.
# This may be replaced when dependencies are built.
