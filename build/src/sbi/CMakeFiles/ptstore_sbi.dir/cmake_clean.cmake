file(REMOVE_RECURSE
  "CMakeFiles/ptstore_sbi.dir/sbi.cpp.o"
  "CMakeFiles/ptstore_sbi.dir/sbi.cpp.o.d"
  "libptstore_sbi.a"
  "libptstore_sbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_sbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
