file(REMOVE_RECURSE
  "CMakeFiles/ptstore_pmp.dir/pmp.cpp.o"
  "CMakeFiles/ptstore_pmp.dir/pmp.cpp.o.d"
  "libptstore_pmp.a"
  "libptstore_pmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_pmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
