file(REMOVE_RECURSE
  "libptstore_pmp.a"
)
