# Empty dependencies file for ptstore_pmp.
# This may be replaced when dependencies are built.
