file(REMOVE_RECURSE
  "CMakeFiles/ptstore_kernel.dir/buddy.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/buddy.cpp.o.d"
  "CMakeFiles/ptstore_kernel.dir/guest.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/guest.cpp.o.d"
  "CMakeFiles/ptstore_kernel.dir/kernel.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/ptstore_kernel.dir/kmem.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/kmem.cpp.o.d"
  "CMakeFiles/ptstore_kernel.dir/page_alloc.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/page_alloc.cpp.o.d"
  "CMakeFiles/ptstore_kernel.dir/pagetable.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/pagetable.cpp.o.d"
  "CMakeFiles/ptstore_kernel.dir/process.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/process.cpp.o.d"
  "CMakeFiles/ptstore_kernel.dir/slab.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/slab.cpp.o.d"
  "CMakeFiles/ptstore_kernel.dir/system.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/system.cpp.o.d"
  "CMakeFiles/ptstore_kernel.dir/token.cpp.o"
  "CMakeFiles/ptstore_kernel.dir/token.cpp.o.d"
  "libptstore_kernel.a"
  "libptstore_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
