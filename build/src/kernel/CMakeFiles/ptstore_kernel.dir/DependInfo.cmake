
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/buddy.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/buddy.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/buddy.cpp.o.d"
  "/root/repo/src/kernel/guest.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/guest.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/guest.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/kernel.cpp.o.d"
  "/root/repo/src/kernel/kmem.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/kmem.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/kmem.cpp.o.d"
  "/root/repo/src/kernel/page_alloc.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/page_alloc.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/page_alloc.cpp.o.d"
  "/root/repo/src/kernel/pagetable.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/pagetable.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/pagetable.cpp.o.d"
  "/root/repo/src/kernel/process.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/process.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/process.cpp.o.d"
  "/root/repo/src/kernel/slab.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/slab.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/slab.cpp.o.d"
  "/root/repo/src/kernel/system.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/system.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/system.cpp.o.d"
  "/root/repo/src/kernel/token.cpp" "src/kernel/CMakeFiles/ptstore_kernel.dir/token.cpp.o" "gcc" "src/kernel/CMakeFiles/ptstore_kernel.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/ptstore_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sbi/CMakeFiles/ptstore_sbi.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ptstore_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ptstore_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ptstore_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pmp/CMakeFiles/ptstore_pmp.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ptstore_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ptstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
