file(REMOVE_RECURSE
  "libptstore_kernel.a"
)
