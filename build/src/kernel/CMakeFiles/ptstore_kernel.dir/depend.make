# Empty dependencies file for ptstore_kernel.
# This may be replaced when dependencies are built.
