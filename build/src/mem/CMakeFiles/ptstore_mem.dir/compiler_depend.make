# Empty compiler generated dependencies file for ptstore_mem.
# This may be replaced when dependencies are built.
