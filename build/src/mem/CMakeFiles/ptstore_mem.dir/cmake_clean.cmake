file(REMOVE_RECURSE
  "CMakeFiles/ptstore_mem.dir/phys_mem.cpp.o"
  "CMakeFiles/ptstore_mem.dir/phys_mem.cpp.o.d"
  "libptstore_mem.a"
  "libptstore_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptstore_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
