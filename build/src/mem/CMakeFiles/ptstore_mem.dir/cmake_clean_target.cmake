file(REMOVE_RECURSE
  "libptstore_mem.a"
)
