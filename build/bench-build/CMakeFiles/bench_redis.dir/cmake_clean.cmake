file(REMOVE_RECURSE
  "../bench/bench_redis"
  "../bench/bench_redis.pdb"
  "CMakeFiles/bench_redis.dir/bench_redis.cpp.o"
  "CMakeFiles/bench_redis.dir/bench_redis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
