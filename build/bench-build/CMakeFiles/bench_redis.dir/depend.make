# Empty dependencies file for bench_redis.
# This may be replaced when dependencies are built.
