file(REMOVE_RECURSE
  "../bench/bench_lmbench"
  "../bench/bench_lmbench.pdb"
  "CMakeFiles/bench_lmbench.dir/bench_lmbench.cpp.o"
  "CMakeFiles/bench_lmbench.dir/bench_lmbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
