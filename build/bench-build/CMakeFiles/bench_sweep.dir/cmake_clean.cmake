file(REMOVE_RECURSE
  "../bench/bench_sweep"
  "../bench/bench_sweep.pdb"
  "CMakeFiles/bench_sweep.dir/bench_sweep.cpp.o"
  "CMakeFiles/bench_sweep.dir/bench_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
