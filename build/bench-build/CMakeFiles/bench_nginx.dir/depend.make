# Empty dependencies file for bench_nginx.
# This may be replaced when dependencies are built.
