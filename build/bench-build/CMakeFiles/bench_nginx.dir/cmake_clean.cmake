file(REMOVE_RECURSE
  "../bench/bench_nginx"
  "../bench/bench_nginx.pdb"
  "CMakeFiles/bench_nginx.dir/bench_nginx.cpp.o"
  "CMakeFiles/bench_nginx.dir/bench_nginx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nginx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
