# Empty dependencies file for bench_forkstress.
# This may be replaced when dependencies are built.
