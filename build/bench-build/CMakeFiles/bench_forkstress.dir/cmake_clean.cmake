file(REMOVE_RECURSE
  "../bench/bench_forkstress"
  "../bench/bench_forkstress.pdb"
  "CMakeFiles/bench_forkstress.dir/bench_forkstress.cpp.o"
  "CMakeFiles/bench_forkstress.dir/bench_forkstress.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forkstress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
