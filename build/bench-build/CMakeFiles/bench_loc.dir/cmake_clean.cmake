file(REMOVE_RECURSE
  "../bench/bench_loc"
  "../bench/bench_loc.pdb"
  "CMakeFiles/bench_loc.dir/bench_loc.cpp.o"
  "CMakeFiles/bench_loc.dir/bench_loc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
