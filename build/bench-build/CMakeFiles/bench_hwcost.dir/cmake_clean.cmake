file(REMOVE_RECURSE
  "../bench/bench_hwcost"
  "../bench/bench_hwcost.pdb"
  "CMakeFiles/bench_hwcost.dir/bench_hwcost.cpp.o"
  "CMakeFiles/bench_hwcost.dir/bench_hwcost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
